"""ARM Cortex-A53 cost model for the software baselines (Fig. 10).

Two software variants run on the ZCU106's A53 @ 1.2 GHz:

* **SW Ref** — the reference implementation of the operator (idiomatic C,
  multi-dimensional arrays, register accumulation);
* **SW HLS code** — the C code generated for HLS executed on the CPU,
  which is slower due to flattened explicit addressing (paper: 0.90x).

The per-operation CPIs live in :class:`~repro.system.platform_data.
PlatformModel` and are calibrated to the paper's measured relations
(HW k=1 = 0.69x SW Ref); the *structure* (MAC/load/store/loop counts) is
derived from the IR, so other kernels scale accordingly.

:func:`measured_sw_seconds_per_element` complements the analytic model
with an actual measurement: the generated C kernel compiled and timed on
the host through the ``cnative`` execution backend (skipping cleanly
when no C compiler is available).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.system.platform_data import DEFAULT_PLATFORM, PlatformModel
from repro.teil.ops import Contraction, Ewise, EwiseKind
from repro.teil.program import Function
from repro.utils import prod


@dataclass(frozen=True)
class CpuModel:
    """A CPU with a clock and the platform's calibrated CPIs."""

    mhz: float = 1_200.0
    platform: PlatformModel = DEFAULT_PLATFORM

    @property
    def hz(self) -> float:
        return self.mhz * 1e6


def _statement_cycles(
    stmt, shapes: Dict[str, Tuple[int, ...]], p: PlatformModel, flat_addressing: bool
) -> float:
    op = stmt.op
    if isinstance(op, Contraction):
        extents = op.index_extents(shapes)
        iters = prod(extents[i] for i in op.all_indices)
        out_elems = prod(op.output_shape(shapes))
        loads = len(op.operands)
        per_iter = p.cpu_fma_cpi + loads * p.cpu_load_cpi + p.cpu_loop_cpi
        if flat_addressing:
            per_iter += (loads + 1) * p.cpu_addr_cpi_per_access
        return iters * per_iter + out_elems * p.cpu_store_cpi
    if isinstance(op, Ewise):
        n = prod(op.output_shape(shapes))
        op_cpi = p.cpu_mul_cpi if op.kind in (EwiseKind.MUL, EwiseKind.DIV) else p.cpu_fma_cpi
        per_iter = op_cpi + 2 * p.cpu_load_cpi + p.cpu_store_cpi + p.cpu_loop_cpi
        if flat_addressing:
            per_iter += 3 * p.cpu_addr_cpi_per_access
        return n * per_iter
    raise SimulationError(f"unknown op {type(op).__name__}")


def sw_ref_cycles_per_element(fn: Function, platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """CPU cycles per element for the reference software implementation."""
    shapes = fn.shapes()
    return sum(_statement_cycles(s, shapes, platform, False) for s in fn.statements)


def sw_hls_c_cycles_per_element(fn: Function, platform: PlatformModel = DEFAULT_PLATFORM) -> float:
    """CPU cycles per element for the HLS-generated C run on the CPU."""
    shapes = fn.shapes()
    return sum(_statement_cycles(s, shapes, platform, True) for s in fn.statements)


def simulate_software(
    fn: Function,
    n_elements: int,
    cpu: CpuModel = CpuModel(),
    variant: str = "ref",
) -> float:
    """Wall-clock seconds for a full software simulation of Ne elements."""
    if variant == "ref":
        per = sw_ref_cycles_per_element(fn, cpu.platform)
    elif variant == "hls_c":
        per = sw_hls_c_cycles_per_element(fn, cpu.platform)
    else:
        raise SimulationError(f"unknown software variant {variant!r}")
    return n_elements * per / cpu.hz


def measured_sw_seconds_per_element(
    fn: Function,
    prog=None,
    *,
    n_elements: int = 64,
    backend: str = "cnative",
) -> Optional[float]:
    """Measured seconds/element of the compiled software kernel, or None.

    Validates the analytic cost model above with a real number: the same
    generated C the SW-HLS-code baseline models is compiled by the host
    toolchain and timed over an ``n_elements`` batch via the ``cnative``
    execution backend (:mod:`repro.exec`).  The host is of course not
    the A53 the paper measured, so the *absolute* value only anchors the
    model's structural counts — ratios between kernels are what transfer.

    Returns None (a clean skip, no exception) when the backend is
    unavailable — e.g. no C compiler in the environment — so model-only
    callers like the Fig. 10 benchmark degrade gracefully.
    """
    from repro.exec import get_backend

    b = get_backend(backend)
    if not b.available():
        return None
    rng = np.random.default_rng(7)
    elements = {}
    static = {}
    for d in fn.inputs():
        # stream the largest-rank state tensor(s), share the operators:
        # mirrors the system model's static/streamed interface split
        if len(d.shape) == max(len(i.shape) for i in fn.inputs()):
            elements[d.name] = rng.standard_normal((n_elements,) + d.shape)
        else:
            static[d.name] = rng.standard_normal(d.shape)
    if not elements:  # all-static kernel: stream everything instead
        elements = {
            d.name: rng.standard_normal((n_elements,) + d.shape)
            for d in fn.inputs()
        }
        static = {}
    warmup = {name: arr[:1] for name, arr in elements.items()}
    b.run_batch(fn, warmup, static, list(warmup), prog=prog)
    # the warmup run pays the one-time C compile; the timed run measures
    # only kernel execution, which is what the cost model predicts
    t0 = time.perf_counter()
    b.run_batch(fn, elements, static, list(elements), prog=prog)
    seconds = time.perf_counter() - t0
    return seconds / n_elements
