"""Full-system performance simulation.

The host main loop (Sec. V-B) per iteration over ``m`` elements:

1. transfer input arrays for m elements to power-of-two aligned PLM bases,
2. ``m/k`` rounds: broadcast start, k kernels execute, done interrupt,
3. transfer m output arrays back.

:func:`simulate_system` computes this analytically; the independent
:func:`simulate_system_events` walks every transfer/round/interrupt as an
explicit timeline event (used to cross-validate the analytic model), and
:func:`run_functional` executes the data path with NumPy for end-to-end
functional checks of multi-element batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sim.cpu import CpuModel, simulate_software
from repro.system.host import HostModel
from repro.system.integration import SystemDesign
from repro.teil.program import Function


@dataclass(frozen=True)
class SimulationResult:
    """Timing breakdown of one full simulation (Ne elements)."""

    k: int
    m: int
    n_elements: int
    clock_hz: float
    compute_cycles: int
    transfer_cycles: int
    control_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.transfer_cycles + self.control_cycles

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def accelerator_seconds(self) -> float:
        """Kernel execution + control only (the paper's 'Accelerator' series
        in Fig. 9 excludes data transfers)."""
        return (self.compute_cycles + self.control_cycles) / self.clock_hz

    def speedup_vs(self, other: "SimulationResult") -> float:
        return other.total_seconds / self.total_seconds

    def accelerator_speedup_vs(self, other: "SimulationResult") -> float:
        return other.accelerator_seconds / self.accelerator_seconds

    def __str__(self) -> str:
        return (
            f"k={self.k} m={self.m} Ne={self.n_elements}: "
            f"{self.total_seconds * 1e3:.2f} ms total "
            f"(compute {self.compute_cycles}, transfer {self.transfer_cycles}, "
            f"control {self.control_cycles} cycles)"
        )

    def summary(self) -> str:
        """Rendered cycle breakdown (compute/transfer/control shares)."""
        from repro.utils import ascii_table

        total = self.total_cycles or 1
        rows = [
            (name, cycles, f"{cycles / total * 100:.1f}%",
             f"{cycles / self.clock_hz * 1e3:.2f}")
            for name, cycles in (
                ("compute", self.compute_cycles),
                ("transfer", self.transfer_cycles),
                ("control", self.control_cycles),
            )
        ]
        rows.append(("total", self.total_cycles, "100.0%",
                     f"{self.total_seconds * 1e3:.2f}"))
        return ascii_table(
            ["phase", "cycles", "share", "time (ms)"],
            rows,
            title=(
                f"Simulation: k={self.k} m={self.m} Ne={self.n_elements} "
                f"@ {self.clock_hz / 1e6:.0f} MHz"
            ),
        )


def simulate_system(
    design: SystemDesign,
    n_elements: int,
    *,
    overlap_transfers: bool = False,
    banking=None,
) -> SimulationResult:
    """Analytic end-to-end simulation.

    ``overlap_transfers=True`` models the paper's future-work "better data
    transfer strategies": with ``batch >= 2``, the integration logic uses
    the PLMs' system-side port to drain/fill the *idle* half of the PLM
    sets while the accelerators work on the other half, so per-round
    transfers hide behind compute.  Requires m >= 2k; with m = k there is
    no idle PLM set and the strategy degenerates to the serial one.

    ``banking`` (a :class:`repro.mnemosyne.hbm.BankingReport`) switches
    the transfer-time model from the single shared AXI port of
    :meth:`~repro.system.platform_data.PlatformModel.transfer_cycles` to
    the banked HBM channels: tensors stream through their assigned
    pseudo-channels concurrently, so an input or output phase takes as
    long as its *slowest* tensor, not the sum over all of them.  Compute
    and control cycles are untouched — banking is a transfer-phase model.
    """
    host = HostModel(n_elements, design.k, design.m)
    p = design.platform
    per_round_compute = design.hls.latency_cycles
    per_round_control = p.control_cycles_per_round(design.k)
    if banking is not None:
        static = banking.phase_cycles("static", 1, design.clock_hz)
    else:
        static = p.transfer_cycles(design.static_bytes)

    if overlap_transfers and design.batch >= 2:
        # software-pipelined rounds over k elements each: fill the first
        # k-element group, then each round's transfers overlap the next
        # round's compute; drain the last group's results.
        if banking is not None:
            in_k = banking.phase_cycles("in", design.k, design.clock_hz)
            out_k = banking.phase_cycles("out", design.k, design.clock_hz)
        else:
            in_k = p.transfer_cycles(design.k * design.transfer_bytes_in_per_element)
            out_k = p.transfer_cycles(design.k * design.transfer_bytes_out_per_element)
        rounds = host.total_rounds
        busy = per_round_compute + per_round_control
        steady = max(busy, in_k + out_k)
        compute = rounds * per_round_compute
        control = rounds * per_round_control
        # transfers not hidden behind compute: prologue + epilogue + the
        # per-round excess when transfers are longer than compute
        transfer = static + in_k + out_k + max(0, rounds - 1) * (steady - busy)
        return SimulationResult(
            design.k, design.m, n_elements, design.clock_hz, compute, transfer, control
        )

    if banking is not None:
        per_iter_transfer = banking.phase_cycles(
            "in", design.m, design.clock_hz
        ) + banking.phase_cycles("out", design.m, design.clock_hz)
    else:
        in_bytes = design.m * design.transfer_bytes_in_per_element
        out_bytes = design.m * design.transfer_bytes_out_per_element
        per_iter_transfer = p.transfer_cycles(in_bytes) + p.transfer_cycles(out_bytes)
    transfer = host.main_iterations * per_iter_transfer + static
    compute = host.total_rounds * per_round_compute
    control = host.total_rounds * per_round_control
    return SimulationResult(
        design.k,
        design.m,
        n_elements,
        design.clock_hz,
        compute,
        transfer,
        control,
    )


def simulate_system_events(design: SystemDesign, n_elements: int) -> SimulationResult:
    """Event-walking simulation: one timeline entry per transfer/round.

    Independent of the closed-form expressions above (explicit loops over
    iterations and rounds); must agree exactly with
    :func:`simulate_system` — property-tested.
    """
    host = HostModel(n_elements, design.k, design.m)
    p = design.platform
    now = 0
    compute = transfer = control = 0
    t = p.transfer_cycles(design.static_bytes)
    now += t
    transfer += t
    for _ in range(host.main_iterations):
        t_in = p.transfer_cycles(design.m * design.transfer_bytes_in_per_element)
        now += t_in
        transfer += t_in
        for _ in range(host.rounds_per_iteration):
            now += p.irq_cycles_per_round
            control += p.irq_cycles_per_round
            # k accelerators run concurrently: one kernel latency per round
            now += design.hls.latency_cycles
            compute += design.hls.latency_cycles
            status = design.k * p.status_cycles_per_acc
            now += status
            control += status
        t_out = p.transfer_cycles(design.m * design.transfer_bytes_out_per_element)
        now += t_out
        transfer += t_out
    assert now == compute + transfer + control
    return SimulationResult(
        design.k,
        design.m,
        n_elements,
        design.clock_hz,
        compute,
        transfer,
        control,
    )


def run_functional(
    fn: Function,
    elements: Dict[str, np.ndarray],
    static_inputs: Dict[str, np.ndarray],
    element_inputs: List[str],
    *,
    backend: str = "numpy",
    prog=None,
) -> Dict[str, np.ndarray]:
    """Execute the kernel functionally over a batch of elements.

    ``elements[name]`` has shape ``(Ne, *tensor_shape)`` for each streamed
    input; static operands are shared.  Returns stacked outputs.

    ``backend`` selects the execution strategy (see :mod:`repro.exec`):
    ``"numpy"`` (default) vectorizes the whole batch, ``"loops"`` runs
    the generated-Python reference per element, ``"cnative"`` drives the
    compiled C kernel.  ``prog`` optionally supplies the scheduled,
    laid-out program for the generated-kernel backends.
    """
    from repro.exec import require_backend  # deferred: exec imports sim types

    return require_backend(backend).run_batch(
        fn, elements, static_inputs, element_inputs, prog=prog
    )


def software_baseline_seconds(
    fn: Function, n_elements: int, variant: str = "ref", cpu: Optional[CpuModel] = None
) -> float:
    """Convenience wrapper for Fig. 10's software rows."""
    return simulate_software(fn, n_elements, cpu or CpuModel(), variant)
