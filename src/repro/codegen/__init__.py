"""Code generation: C99 kernels for HLS, HLS directives, Python mirror.

The C99 emitter produces the ``kernel_body`` function of Fig. 6 with every
memory element exported as an interface parameter (flattened 1-D arrays,
affine index expressions).  The Python emitter mirrors the same loop nests
over flat NumPy buffers so generated-code semantics can be tested against
the IR interpreter without a C toolchain.
"""

from repro.codegen.cast import (
    CArrayParam,
    CAssign,
    CBinary,
    CBlock,
    CComment,
    CDecl,
    CExpr,
    CFor,
    CFunction,
    CIndex,
    CLiteral,
    CPragma,
    CVar,
)
from repro.codegen.cemit import emit_function, emit_node
from repro.codegen.kernel import KernelCode, generate_kernel
from repro.codegen.pyemit import (
    generate_python_kernel,
    compile_python_kernel,
    run_python_kernel,
)

__all__ = [
    "CArrayParam",
    "CAssign",
    "CBinary",
    "CBlock",
    "CComment",
    "CDecl",
    "CExpr",
    "CFor",
    "CFunction",
    "CIndex",
    "CLiteral",
    "CPragma",
    "CVar",
    "emit_function",
    "emit_node",
    "KernelCode",
    "generate_kernel",
    "generate_python_kernel",
    "compile_python_kernel",
    "run_python_kernel",
]
