"""Python mirror of the generated C kernel.

Emits a Python function with the *same* loop structure and flat-address
arithmetic as the C99 kernel, compiled with ``exec``.  Running it against
the IR interpreter validates the whole codegen path (schedules, layouts,
accumulator transformation, address expressions) without a C toolchain.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.codegen.kernel import StagePlan, stage_plans
from repro.errors import IRError
from repro.layout.layout import Layout
from repro.poly.aff import AffTuple
from repro.poly.schedule import PolyProgram

_EWISE_PY = {"*": "*", "/": "/", "+": "+", "-": "-"}


def _addr_py(fn: AffTuple) -> str:
    e = fn.exprs[0]
    parts: List[str] = []
    for d, c in e.coeffs:
        parts.append(d if c == 1 else f"{c}*{d}")
    if e.const or not parts:
        parts.append(str(e.const))
    return " + ".join(parts)


def _emit_stage_py(plan: StagePlan, lines: List[str], indent: str) -> None:
    lines.append(f"{indent}# stage {plan.name}: {plan.kind} -> {plan.write_array}")
    write = f"{plan.write_array}[{_addr_py(plan.write_addr)}]"
    reads = [f"{arr}[{_addr_py(fn)}]" for arr, fn in plan.reads]

    def emit_loops(loop_specs, depth):
        for var, lo, hi in loop_specs:
            lines.append(f"{indent}{'    ' * depth}for {var} in range({lo}, {hi + 1}):")
            depth += 1
        return depth

    if plan.kind.startswith("ewise"):
        op = _EWISE_PY[plan.kind.split(":")[1]]
        d = emit_loops(plan.loops, 0)
        lines.append(f"{indent}{'    ' * d}{write} = {reads[0]} {op} {reads[1]}")
        return
    if plan.n_reduction_loops == 0:
        d = emit_loops(plan.loops, 0)
        lines.append(f"{indent}{'    ' * d}{write} = {' * '.join(reads)}")
        return
    if plan.accumulator_style:
        n_out = len(plan.loops) - plan.n_reduction_loops
        d = emit_loops(plan.loops[:n_out], 0)
        lines.append(f"{indent}{'    ' * d}acc = 0.0")
        d2 = emit_loops(plan.loops[n_out:], d)
        lines.append(f"{indent}{'    ' * d2}acc += {' * '.join(reads)}")
        lines.append(f"{indent}{'    ' * d}{write} = acc")
        return
    # memory accumulate
    red = set(plan.reduction_dims)
    init_loops = tuple(l for l in plan.loops if l[0] not in red)
    d = emit_loops(init_loops, 0)
    lines.append(f"{indent}{'    ' * d}{write} = 0.0")
    d = emit_loops(plan.loops, 0)
    lines.append(f"{indent}{'    ' * d}{write} += {' * '.join(reads)}")


def generate_python_kernel(
    prog: PolyProgram, name: str = "kernel_body", plans: Optional[List[StagePlan]] = None
) -> str:
    """Python source mirroring the C kernel (flat arrays as parameters)."""
    plans = plans or stage_plans(prog)
    fn = prog.function
    params = [d.name for d in fn.interface()] + [d.name for d in fn.temporaries()]
    lines = [f"def {name}({', '.join(params)}):"]
    for plan in plans:
        _emit_stage_py(plan, lines, "    ")
    return "\n".join(lines) + "\n"


def compile_python_kernel(source: str, name: str = "kernel_body") -> Callable:
    ns: Dict[str, object] = {}
    exec(compile(source, f"<generated {name}>", "exec"), ns)  # noqa: S102
    return ns[name]  # type: ignore[return-value]


def pack_array(flat: np.ndarray, layout: Layout, arr: np.ndarray) -> None:
    """Scatter a tensor into its flat, layout-addressed buffer.

    Vectorized over a precomputed flat-address index array (cached per
    ``(shape, layout)`` — see :func:`repro.layout.layout.
    flat_index_array`) instead of an ``np.ndindex`` Python loop.
    """
    flat[layout.flat_indices().reshape(-1)] = np.ascontiguousarray(arr).reshape(-1)


def unpack_array(flat: np.ndarray, layout: Layout) -> np.ndarray:
    """Gather a tensor back out of its flat buffer (vectorized)."""
    return flat[layout.flat_indices()]


def run_python_kernel(
    prog: PolyProgram, inputs: Mapping[str, np.ndarray], name: str = "kernel_body"
) -> Dict[str, np.ndarray]:
    """Allocate flat buffers, run the generated Python kernel, reshape outputs."""
    fn = prog.function
    kernel = compile_python_kernel(generate_python_kernel(prog, name), name)
    buffers: Dict[str, np.ndarray] = {}
    for d in fn.decls.values():
        layout = prog.layouts[d.name]
        buffers[d.name] = np.zeros(layout.size, dtype=np.float64)
    for d in fn.inputs():
        if d.name not in inputs:
            raise IRError(f"missing input {d.name!r}")
        arr = np.asarray(inputs[d.name], dtype=np.float64)
        if arr.shape != d.shape:
            raise IRError(f"input {d.name!r} shape {arr.shape} != {d.shape}")
        pack_array(buffers[d.name], prog.layouts[d.name], arr)
    params = [d.name for d in fn.interface()] + [d.name for d in fn.temporaries()]
    kernel(*[buffers[p] for p in params])
    return {
        d.name: unpack_array(buffers[d.name], prog.layouts[d.name])
        for d in fn.outputs()
    }
