"""A small C AST sufficient for HLS kernel emission."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


class CExpr:
    """Base class for C expressions."""


@dataclass(frozen=True)
class CVar(CExpr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CLiteral(CExpr):
    value: Union[int, float, str]

    def __str__(self) -> str:
        if isinstance(self.value, float):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class CBinary(CExpr):
    op: str
    lhs: CExpr
    rhs: CExpr

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class CIndex(CExpr):
    base: str
    index: CExpr

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


def affine_cexpr(coeff_terms: Sequence[Tuple[int, str]], const: int) -> CExpr:
    """Render ``sum(c*v) + const`` compactly (no redundant 1* or +0)."""
    parts: List[str] = []
    for c, v in coeff_terms:
        if c == 0:
            continue
        parts.append(v if c == 1 else f"{c}*{v}")
    if const or not parts:
        parts.append(str(const))
    return CVar(" + ".join(parts))


class CStmt:
    """Base class for C statements."""


@dataclass
class CAssign(CStmt):
    lhs: CExpr
    rhs: CExpr
    op: str = "="  # '=' or '+='

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs};"


@dataclass
class CDecl(CStmt):
    ctype: str
    name: str
    init: Optional[CExpr] = None
    array_size: Optional[int] = None

    def __str__(self) -> str:
        arr = f"[{self.array_size}]" if self.array_size is not None else ""
        init = f" = {self.init}" if self.init is not None else ""
        return f"{self.ctype} {self.name}{arr}{init};"


@dataclass
class CComment(CStmt):
    text: str

    def __str__(self) -> str:
        return f"/* {self.text} */"


@dataclass
class CPragma(CStmt):
    text: str

    def __str__(self) -> str:
        return f"#pragma {self.text}"


@dataclass
class CBlock(CStmt):
    stmts: List[CStmt] = field(default_factory=list)


@dataclass
class CFor(CStmt):
    var: str
    lo: int
    hi: int  # inclusive
    body: CBlock = field(default_factory=CBlock)
    label: str = ""
    pragmas: List[CPragma] = field(default_factory=list)


@dataclass(frozen=True)
class CArrayParam:
    """A flattened 1-D array parameter: ``double name[size]``."""

    name: str
    size: int
    ctype: str = "double"

    def __str__(self) -> str:
        return f"{self.ctype} {self.name}[{self.size}]"


@dataclass
class CFunction:
    name: str
    params: List[CArrayParam] = field(default_factory=list)
    body: CBlock = field(default_factory=CBlock)
    return_type: str = "void"
    comment: str = ""
