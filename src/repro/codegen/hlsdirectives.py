"""HLS directive (pragma) configuration and generation.

State-of-the-art HLS optimizations the paper applies to the computational
part (Sec. V-A1): loop pipelining, loop flattening, unrolling, and array
partitioning.  These are independent of the memory interface because all
arrays are exported as standard memory ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.codegen.cast import CPragma


@dataclass(frozen=True)
class HlsDirectives:
    """Directive set for one kernel.

    pipeline:
        'flatten' — flatten each stage's nest and pipeline at II=1 (the
        configuration used for the paper's 200 MHz kernels),
        'inner'   — pipeline only the innermost loop,
        'none'    — no pipelining (ablation).
    unroll_factor:
        unroll of the innermost loop (demands multi-port memories).
    array_partition:
        cyclic partition factor per array (1 = no partitioning).
    """

    pipeline: str = "flatten"
    pipeline_ii: int = 1
    unroll_factor: int = 1
    array_partition: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pipeline not in ("flatten", "inner", "none"):
            raise ValueError(f"unknown pipeline mode {self.pipeline!r}")
        if self.pipeline_ii < 1 or self.unroll_factor < 1:
            raise ValueError("II and unroll factor must be >= 1")

    # -- pragma rendering ----------------------------------------------------
    def interface_pragmas(self, arrays: List[str]) -> List[CPragma]:
        """``ap_memory`` ports for every exported array + ap_ctrl control."""
        out = [CPragma(f"HLS INTERFACE ap_memory port={a}") for a in arrays]
        out.append(CPragma("HLS INTERFACE ap_ctrl_hs port=return"))
        return out

    def partition_pragmas(self, arrays: List[str]) -> List[CPragma]:
        out = []
        for a in arrays:
            f = self.array_partition.get(a, 1)
            if f > 1:
                out.append(
                    CPragma(f"HLS ARRAY_PARTITION variable={a} cyclic factor={f}")
                )
        return out

    def innermost_pragmas(self) -> List[CPragma]:
        out: List[CPragma] = []
        if self.pipeline != "none":
            out.append(CPragma(f"HLS PIPELINE II={self.pipeline_ii}"))
        if self.unroll_factor > 1:
            out.append(CPragma(f"HLS UNROLL factor={self.unroll_factor}"))
        return out

    def outer_pragmas(self) -> List[CPragma]:
        if self.pipeline == "flatten":
            return [CPragma("HLS LOOP_FLATTEN")]
        return []
