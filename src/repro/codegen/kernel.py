"""C99 kernel emission (Fig. 6): exported-PLM ``kernel_body``.

"To separate the generation of the computational part and the PLM units we
export all memory elements from the accelerator.  The compiler transforms
each memory element (e.g., array or tensor) into an interface parameter of
the code to be synthesized."  Arrays are flattened 1-D (the paper's Fig. 6
shows multi-dimensional arrays only "for readability").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codegen.cast import (
    CArrayParam,
    CAssign,
    CBlock,
    CComment,
    CDecl,
    CExpr,
    CFor,
    CFunction,
    CIndex,
    CLiteral,
    CStmt,
    CVar,
    affine_cexpr,
)
from repro.codegen.cemit import emit_function
from repro.codegen.hlsdirectives import HlsDirectives
from repro.errors import IRError
from repro.poly.aff import AffTuple
from repro.poly.codegen_ast import LoopAst, build_loop_ast
from repro.poly.schedule import PolyProgram


@dataclass(frozen=True)
class StagePlan:
    """Codegen-neutral description of one stage (shared with pyemit)."""

    name: str
    kind: str                          # 'contract' | 'ewise:<op>'
    loops: Tuple[Tuple[str, int, int], ...]   # (var, lo, hi) outermost first
    n_reduction_loops: int
    reduction_dims: Tuple[str, ...]
    accumulator_style: bool
    write_array: str
    write_addr: AffTuple               # loop dims -> flat address (1 expr)
    reads: Tuple[Tuple[str, AffTuple], ...]   # (array, flat address fn)


def _flat_access(prog: PolyProgram, tensor: str, fn: AffTuple) -> Tuple[str, AffTuple]:
    layout = prog.layouts[tensor]
    dims = tuple(f"x{i}" for i in range(len(layout.shape)))
    return layout.array, layout.aff(dims).compose(fn)


def stage_plans(prog: PolyProgram, ast: Optional[LoopAst] = None) -> List[StagePlan]:
    """Lower the loop AST to flat-address stage plans."""
    ast = ast or build_loop_ast(prog)
    plans: List[StagePlan] = []
    for node in ast.stages:
        s = node.stmt
        warr, waddr = _flat_access(prog, s.write.tensor, s.write.fn)
        reads = tuple(_flat_access(prog, a.tensor, a.fn) for a in s.reads)
        plans.append(
            StagePlan(
                name=s.name,
                kind=s.kind,
                loops=tuple((l.var, l.lo, l.hi) for l in node.loops),
                n_reduction_loops=node.n_reduction_loops,
                reduction_dims=tuple(s.reduction_dims),
                accumulator_style=node.accumulator_style,
                write_array=warr,
                write_addr=waddr,
                reads=reads,
            )
        )
    return plans


@dataclass
class KernelCode:
    """Generated kernel artifact."""

    function: CFunction
    source: str
    interface_params: List[str]       # exported array parameter names, in order
    array_sizes: Dict[str, int]
    temporaries_internal: bool
    plans: List[StagePlan] = field(default_factory=list)


def _addr_cexpr(fn: AffTuple) -> CExpr:
    e = fn.exprs[0]
    return affine_cexpr([(c, d) for d, c in e.coeffs], e.const)


def _product_cexpr(reads, ewise_op: Optional[str] = None) -> CExpr:
    exprs: List[CExpr] = [CIndex(arr, _addr_cexpr(fn)) for arr, fn in reads]
    if ewise_op is not None:
        if len(exprs) != 2:
            raise IRError("entry-wise op needs exactly two operands")
        from repro.codegen.cast import CBinary

        return CBinary(ewise_op, exprs[0], exprs[1])
    out = exprs[0]
    from repro.codegen.cast import CBinary

    for e in exprs[1:]:
        out = CBinary("*", out, e)
    return out


def _emit_stage(plan: StagePlan, directives: HlsDirectives) -> List[CStmt]:
    """One loop nest per stage."""
    out: List[CStmt] = [CComment(f"stage {plan.name}: {plan.kind} -> {plan.write_array}")]
    write = CIndex(plan.write_array, _addr_cexpr(plan.write_addr))

    def nest(loop_specs, body_stmts, innermost_extra_pragmas):
        node: CStmt | None = None
        for depth, (var, lo, hi) in enumerate(reversed(loop_specs)):
            blk = CBlock([node] if node is not None else body_stmts)
            is_innermost = depth == 0
            pragmas = list(innermost_extra_pragmas) if is_innermost else list(
                directives.outer_pragmas()
            )
            node = CFor(var, lo, hi, blk, pragmas=pragmas)
        return node if node is not None else CBlock(body_stmts)

    if plan.kind.startswith("ewise"):
        op = plan.kind.split(":")[1]
        body = [CAssign(write, _product_cexpr(plan.reads, ewise_op=op))]
        out.append(nest(plan.loops, body, directives.innermost_pragmas()))
        return out

    # contraction
    if plan.n_reduction_loops == 0:
        body = [CAssign(write, _product_cexpr(plan.reads))]
        out.append(nest(plan.loops, body, directives.innermost_pragmas()))
        return out

    if plan.accumulator_style:
        n_out = len(plan.loops) - plan.n_reduction_loops
        red_loops = plan.loops[n_out:]
        inner_body = [CAssign(CVar("acc"), _product_cexpr(plan.reads), op="+=")]
        red_nest = nest(red_loops, inner_body, directives.innermost_pragmas())
        mid = [
            CDecl("double", "acc", CLiteral(0.0)),
            red_nest,
            CAssign(write, CVar("acc")),
        ]
        out.append(nest(plan.loops[:n_out], mid, []))
        return out

    # memory-accumulate fallback: zero-init nest + update nest
    red = set(plan.reduction_dims)
    init_loops = tuple(l for l in plan.loops if l[0] not in red)
    out.append(nest(init_loops, [CAssign(write, CLiteral(0.0))], []))
    out.append(
        nest(
            plan.loops,
            [CAssign(write, _product_cexpr(plan.reads), op="+=")],
            directives.innermost_pragmas(),
        )
    )
    return out


def generate_kernel(
    prog: PolyProgram,
    *,
    directives: Optional[HlsDirectives] = None,
    temporaries_internal: bool = False,
    name: str = "kernel_body",
) -> KernelCode:
    """Emit the C99 kernel.

    ``temporaries_internal=True`` keeps temporaries as local arrays inside
    the function (the paper's 33-BRAM ablation); the default exports them so
    Mnemosyne controls their implementation.
    """
    directives = directives or HlsDirectives()
    fn = prog.function
    sizes = {d.name: prog.layouts[d.name].size for d in fn.decls.values()}

    interface = [d.name for d in fn.interface()]
    temps = [d.name for d in fn.temporaries()]
    params = interface + ([] if temporaries_internal else temps)

    cfn = CFunction(
        name,
        params=[CArrayParam(p, sizes[p]) for p in params],
        comment=(
            f"Generated from CFDlang function {fn.name!r}.\n"
            "All memory elements are exported as interface parameters; each\n"
            "array is implemented by a PLM unit outside the accelerator."
        ),
    )
    body = cfn.body.stmts
    body.extend(directives.interface_pragmas(params))
    body.extend(directives.partition_pragmas(params))
    if temporaries_internal:
        for t in temps:
            body.append(CDecl("double", t, array_size=sizes[t]))
    plans = stage_plans(prog)
    for plan in plans:
        body.extend(_emit_stage(plan, directives))
    return KernelCode(
        function=cfn,
        source=emit_function(cfn),
        interface_params=params,
        array_sizes=sizes,
        temporaries_internal=temporaries_internal,
        plans=plans,
    )
