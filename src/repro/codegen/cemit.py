"""C AST to C99 source text."""

from __future__ import annotations

from typing import List

from repro.codegen.cast import (
    CBlock,
    CFor,
    CFunction,
    CStmt,
)

_INDENT = "  "


def emit_node(node: CStmt, depth: int = 0) -> List[str]:
    pad = _INDENT * depth
    if isinstance(node, CBlock):
        out: List[str] = []
        for s in node.stmts:
            out.extend(emit_node(s, depth))
        return out
    if isinstance(node, CFor):
        out = []
        label = f"{node.label}: " if node.label else ""
        out.append(
            f"{pad}{label}for (int {node.var} = {node.lo}; "
            f"{node.var} <= {node.hi}; ++{node.var}) {{"
        )
        for p in node.pragmas:
            out.append(f"{_INDENT * (depth + 1)}{p}")
        out.extend(emit_node(node.body, depth + 1))
        out.append(f"{pad}}}")
        return out
    return [f"{pad}{node}"]


def emit_function(fn: CFunction) -> str:
    lines: List[str] = []
    if fn.comment:
        lines.append("/*")
        for ln in fn.comment.splitlines():
            lines.append(f" * {ln}" if ln else " *")
        lines.append(" */")
    params = ",\n".join(f"    {p}" for p in fn.params)
    lines.append(f"{fn.return_type} {fn.name}(")
    lines.append(params)
    lines.append(") {")
    lines.extend(emit_node(fn.body, 1))
    lines.append("}")
    return "\n".join(lines) + "\n"
