"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch flow-level failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CFDlangSyntaxError(ReproError):
    """Lexical or syntactic error in CFDlang source.

    Carries the source line/column of the offending token when available.
    """

    def __init__(self, message: str, line: int = -1, column: int = -1) -> None:
        self.line = line
        self.column = column
        if line >= 0:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class CFDlangSemanticError(ReproError):
    """Type/shape/kind violation found during semantic analysis."""


class IRError(ReproError):
    """Malformed or inconsistent tensor IR."""


class PolyhedralError(ReproError):
    """Invalid polyhedral object or unsupported operation."""


class LayoutError(ReproError):
    """Illegal layout or partitioning map (e.g. non-injective fixpoint)."""


class SchedulingError(ReproError):
    """No legal schedule satisfies the requested constraints."""


class HLSError(ReproError):
    """HLS model cannot schedule or estimate the given kernel."""


class MemoryArchitectureError(ReproError):
    """Mnemosyne model cannot build a PLM architecture."""


class SystemGenerationError(ReproError):
    """Replication/integration constraints cannot be met (Eq. 3)."""


class SimulationError(ReproError):
    """Inconsistent simulation configuration."""


class ExecBackendError(ReproError):
    """Unknown or unavailable kernel execution backend."""
