"""Programmatic construction of CFDlang programs.

Application code (``repro.apps``) builds operators like the Inverse
Helmholtz parametrically in ``p`` instead of string-formatting DSL source:

    b = ProgramBuilder()
    S = b.input("S", (p + 1, p + 1))
    u = b.input("u", (p + 1,) * 3)
    v = b.output("v", (p + 1,) * 3)
    t = b.local("t", (p + 1,) * 3)
    b.assign(t, b.contract(b.outer(S, S, S, u), [(1, 6), (3, 7), (5, 8)]))
    ...
    prog = b.build()
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cfdlang.ast import (
    Add,
    Assign,
    Contract,
    Div,
    Expr,
    Hadamard,
    Ident,
    Outer,
    Program,
    Sub,
    VarDecl,
    VarKind,
)
from repro.cfdlang.sema import analyze
from repro.errors import CFDlangSemanticError


class ProgramBuilder:
    """Accumulates declarations and statements, then validates via sema."""

    def __init__(self) -> None:
        self._decls: List[VarDecl] = []
        self._stmts: List[Assign] = []
        self._names: set = set()

    # -- declarations ------------------------------------------------------
    def _declare(self, name: str, shape: Sequence[int], kind: VarKind) -> Ident:
        if name in self._names:
            raise CFDlangSemanticError(f"duplicate declaration of {name!r}")
        self._names.add(name)
        self._decls.append(VarDecl(name=name, kind=kind, shape=tuple(int(s) for s in shape)))
        return Ident(name=name)

    def input(self, name: str, shape: Sequence[int]) -> Ident:
        return self._declare(name, shape, VarKind.INPUT)

    def output(self, name: str, shape: Sequence[int]) -> Ident:
        return self._declare(name, shape, VarKind.OUTPUT)

    def local(self, name: str, shape: Sequence[int]) -> Ident:
        return self._declare(name, shape, VarKind.LOCAL)

    # -- expressions ---------------------------------------------------------
    @staticmethod
    def outer(*factors: Expr) -> Expr:
        if len(factors) < 2:
            raise CFDlangSemanticError("outer product needs at least two factors")
        flat: List[Expr] = []
        for f in factors:
            if isinstance(f, Outer):
                flat.extend(f.factors)
            else:
                flat.append(f)
        return Outer(factors=flat)

    @staticmethod
    def contract(operand: Expr, pairs: Sequence[Tuple[int, int]]) -> Expr:
        return Contract(operand=operand, pairs=[(int(a), int(b)) for a, b in pairs])

    @staticmethod
    def hadamard(lhs: Expr, rhs: Expr) -> Expr:
        return Hadamard(lhs=lhs, rhs=rhs)

    @staticmethod
    def div(lhs: Expr, rhs: Expr) -> Expr:
        return Div(lhs=lhs, rhs=rhs)

    @staticmethod
    def add(lhs: Expr, rhs: Expr) -> Expr:
        return Add(lhs=lhs, rhs=rhs)

    @staticmethod
    def sub(lhs: Expr, rhs: Expr) -> Expr:
        return Sub(lhs=lhs, rhs=rhs)

    # -- statements -----------------------------------------------------------
    def assign(self, target: Ident | str, value: Expr) -> None:
        name = target.name if isinstance(target, Ident) else target
        self._stmts.append(Assign(target=name, value=value))

    # -- finalize ---------------------------------------------------------------
    def build(self) -> Program:
        """Assemble and semantically validate the program."""
        prog = Program(decls=list(self._decls), stmts=list(self._stmts))
        return analyze(prog)
