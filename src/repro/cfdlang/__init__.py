"""CFDlang frontend: lexer, parser, AST, semantic analysis, builder.

CFDlang (Rink et al., RWDSL 2018) is a target-agnostic tensor DSL close to
the mathematical problem specification used in CFD codes.  The grammar
implemented here covers the language as used in the paper (Fig. 1) plus
``type`` aliases and the full operator set of Sec. II-B:

    program   := (typedecl | vardecl | stmt)*
    typedecl  := 'type' ID ':' shape
    vardecl   := 'var' ('input'|'output')? ID ':' (shape | ID)
    shape     := '[' INT+ ']'
    stmt      := ID '=' expr
    expr      := add
    add       := mul (('+'|'-') mul)*
    mul       := contr (('*'|'/') contr)*
    contr     := outer ('.' pairs)?
    outer     := primary ('#' primary)*
    primary   := ID | '(' expr ')'
    pairs     := '[' ('[' INT INT ']')+ ']'

``#`` is the outer (tensor) product, ``*`` the entry-wise (Hadamard)
product, ``.`` the contraction over the listed dimension pairs of the
product tensor (dimensions numbered from 0).
"""

from repro.cfdlang.ast import (
    Add,
    Assign,
    Contract,
    Div,
    Hadamard,
    Ident,
    Outer,
    Program,
    Sub,
    TypeDecl,
    VarDecl,
    VarKind,
)
from repro.cfdlang.lexer import Lexer, Token, TokenKind
from repro.cfdlang.parser import parse_program
from repro.cfdlang.sema import analyze
from repro.cfdlang.printer import print_program
from repro.cfdlang.builder import ProgramBuilder

__all__ = [
    "Add",
    "Assign",
    "Contract",
    "Div",
    "Hadamard",
    "Ident",
    "Outer",
    "Program",
    "Sub",
    "TypeDecl",
    "VarDecl",
    "VarKind",
    "Lexer",
    "Token",
    "TokenKind",
    "parse_program",
    "analyze",
    "print_program",
    "ProgramBuilder",
]
