"""Semantic analysis: name resolution, shape inference, kind checking.

On success every expression node's ``shape`` is filled in and the program
satisfies:

* every identifier is declared exactly once, type aliases resolve;
* inputs are never assigned, outputs are assigned exactly once;
* locals are assigned exactly once and before any use (the source program is
  already in single-assignment form — Sec. IV-A's pseudo-SSA step then only
  needs to name transient subexpressions);
* all operator shape rules hold (outer concatenates, contraction removes
  equal-extent disjoint pairs, entry-wise ops require identical shapes).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cfdlang.ast import (
    Add,
    Contract,
    Div,
    Expr,
    Hadamard,
    Ident,
    Outer,
    Program,
    Sub,
    VarKind,
)
from repro.errors import CFDlangSemanticError


def _resolve_decl_shapes(prog: Program) -> None:
    aliases: Dict[str, Tuple[int, ...]] = {}
    for td in prog.typedecls:
        if td.name in aliases:
            raise CFDlangSemanticError(f"duplicate type {td.name!r} (line {td.line})")
        if any(d <= 0 for d in td.shape):
            raise CFDlangSemanticError(f"type {td.name!r} has non-positive extent")
        aliases[td.name] = td.shape
    for d in prog.decls:
        if d.type_name is not None:
            if d.type_name not in aliases:
                raise CFDlangSemanticError(
                    f"unknown type {d.type_name!r} for var {d.name!r} (line {d.line})"
                )
            d.shape = aliases[d.type_name]
        if any(x <= 0 for x in d.shape):
            raise CFDlangSemanticError(f"var {d.name!r} has non-positive extent")


def infer_shape(expr: Expr, env: Dict[str, Tuple[int, ...]]) -> Tuple[int, ...]:
    """Infer (and annotate) the shape of an expression."""
    if isinstance(expr, Ident):
        if expr.name not in env:
            raise CFDlangSemanticError(f"use of undeclared tensor {expr.name!r} (line {expr.line})")
        expr.shape = env[expr.name]
        return expr.shape
    if isinstance(expr, Outer):
        shape: Tuple[int, ...] = ()
        for f in expr.factors:
            shape = shape + infer_shape(f, env)
        expr.shape = shape
        return shape
    if isinstance(expr, Contract):
        inner = infer_shape(expr.operand, env)
        rank = len(inner)
        used = set()
        for a, b in expr.pairs:
            if a == b:
                raise CFDlangSemanticError(f"contraction pair [{a} {b}] is degenerate (line {expr.line})")
            for idx in (a, b):
                if not (0 <= idx < rank):
                    raise CFDlangSemanticError(
                        f"contraction index {idx} out of range for rank {rank} (line {expr.line})"
                    )
                if idx in used:
                    raise CFDlangSemanticError(
                        f"contraction index {idx} used twice (line {expr.line})"
                    )
                used.add(idx)
            if inner[a] != inner[b]:
                raise CFDlangSemanticError(
                    f"contraction pair [{a} {b}] has mismatched extents "
                    f"{inner[a]} vs {inner[b]} (line {expr.line})"
                )
        expr.shape = tuple(s for i, s in enumerate(inner) if i not in used)
        return expr.shape
    if isinstance(expr, (Hadamard, Div, Add, Sub)):
        ls = infer_shape(expr.lhs, env)
        rs = infer_shape(expr.rhs, env)
        if ls != rs:
            raise CFDlangSemanticError(
                f"entry-wise '{expr.op}' requires equal shapes, got {ls} vs {rs} (line {expr.line})"
            )
        expr.shape = ls
        return ls
    raise CFDlangSemanticError(f"unknown expression node {type(expr).__name__}")


def analyze(prog: Program) -> Program:
    """Run semantic analysis in place; returns the program for chaining."""
    _resolve_decl_shapes(prog)
    env: Dict[str, Tuple[int, ...]] = {}
    kinds: Dict[str, VarKind] = {}
    for d in prog.decls:
        if d.name in env:
            raise CFDlangSemanticError(f"duplicate declaration of {d.name!r} (line {d.line})")
        env[d.name] = d.shape
        kinds[d.name] = d.kind

    assigned: Dict[str, int] = {}
    defined = {n for n, k in kinds.items() if k is VarKind.INPUT}
    for stmt in prog.stmts:
        if stmt.target not in env:
            raise CFDlangSemanticError(
                f"assignment to undeclared tensor {stmt.target!r} (line {stmt.line})"
            )
        if kinds[stmt.target] is VarKind.INPUT:
            raise CFDlangSemanticError(
                f"assignment to input {stmt.target!r} (line {stmt.line})"
            )
        if stmt.target in assigned:
            raise CFDlangSemanticError(
                f"tensor {stmt.target!r} assigned more than once "
                f"(lines {assigned[stmt.target]} and {stmt.line})"
            )
        for used in _uses(stmt.value):
            if used not in env:
                raise CFDlangSemanticError(
                    f"use of undeclared tensor {used!r} (line {stmt.line})"
                )
            if used not in defined:
                raise CFDlangSemanticError(
                    f"tensor {used!r} used before assignment (line {stmt.line})"
                )
        shape = infer_shape(stmt.value, env)
        if shape != env[stmt.target]:
            raise CFDlangSemanticError(
                f"assignment to {stmt.target!r}: shape {shape} does not match "
                f"declared {env[stmt.target]} (line {stmt.line})"
            )
        assigned[stmt.target] = stmt.line
        defined.add(stmt.target)

    for d in prog.decls:
        if d.kind is VarKind.OUTPUT and d.name not in assigned:
            raise CFDlangSemanticError(f"output {d.name!r} is never assigned")
    return prog


def _uses(expr: Expr):
    from repro.cfdlang.ast import idents_used

    return idents_used(expr)
