"""Recursive-descent parser for CFDlang (grammar in the package docstring)."""

from __future__ import annotations

from typing import List, Tuple

from repro.cfdlang.ast import (
    Add,
    Assign,
    Contract,
    Div,
    Expr,
    Hadamard,
    Ident,
    Outer,
    Program,
    Sub,
    TypeDecl,
    VarDecl,
    VarKind,
)
from repro.cfdlang.lexer import Lexer, Token, TokenKind
from repro.errors import CFDlangSyntaxError


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise CFDlangSyntaxError(
                f"expected {kind.value!r}, found {tok.text or '<eof>'!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def accept(self, kind: TokenKind) -> bool:
        if self.peek().kind is kind:
            self.advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------
    def program(self) -> Program:
        prog = Program(line=1)
        while self.peek().kind is not TokenKind.EOF:
            tok = self.peek()
            if tok.kind is TokenKind.TYPE:
                prog.typedecls.append(self.typedecl())
            elif tok.kind is TokenKind.VAR:
                prog.decls.append(self.vardecl())
            elif tok.kind is TokenKind.IDENT:
                prog.stmts.append(self.statement())
            else:
                raise CFDlangSyntaxError(
                    f"expected declaration or statement, found {tok.text!r}",
                    tok.line,
                    tok.column,
                )
        return prog

    def typedecl(self) -> TypeDecl:
        start = self.expect(TokenKind.TYPE)
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.COLON)
        shape = self.shape()
        return TypeDecl(name=name, shape=shape, line=start.line)

    def vardecl(self) -> VarDecl:
        start = self.expect(TokenKind.VAR)
        kind = VarKind.LOCAL
        if self.accept(TokenKind.INPUT):
            kind = VarKind.INPUT
        elif self.accept(TokenKind.OUTPUT):
            kind = VarKind.OUTPUT
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.COLON)
        if self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
            return VarDecl(name=name, kind=kind, shape=(), type_name=alias, line=start.line)
        shape = self.shape()
        return VarDecl(name=name, kind=kind, shape=shape, line=start.line)

    def shape(self) -> Tuple[int, ...]:
        self.expect(TokenKind.LBRACKET)
        dims: List[int] = []
        while self.peek().kind is TokenKind.INT:
            dims.append(self.advance().int_value)
        tok = self.expect(TokenKind.RBRACKET)
        if not dims:
            raise CFDlangSyntaxError("empty shape", tok.line, tok.column)
        return tuple(dims)

    def statement(self) -> Assign:
        target = self.expect(TokenKind.IDENT)
        self.expect(TokenKind.EQUALS)
        value = self.expr()
        return Assign(target=target.text, value=value, line=target.line)

    def expr(self) -> Expr:
        return self.add()

    def add(self) -> Expr:
        lhs = self.mul()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance()
            rhs = self.mul()
            cls = Add if op.kind is TokenKind.PLUS else Sub
            lhs = cls(lhs=lhs, rhs=rhs, line=op.line)
        return lhs

    def mul(self) -> Expr:
        lhs = self.contraction()
        while self.peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self.advance()
            rhs = self.contraction()
            cls = Hadamard if op.kind is TokenKind.STAR else Div
            lhs = cls(lhs=lhs, rhs=rhs, line=op.line)
        return lhs

    def contraction(self) -> Expr:
        operand = self.outer()
        while self.peek().kind is TokenKind.DOT:
            dot = self.advance()
            pairs = self.index_pairs()
            operand = Contract(operand=operand, pairs=pairs, line=dot.line)
        return operand

    def outer(self) -> Expr:
        first = self.primary()
        if self.peek().kind is not TokenKind.HASH:
            return first
        factors = [first]
        while self.accept(TokenKind.HASH):
            factors.append(self.primary())
        return Outer(factors=factors, line=factors[0].line)

    def primary(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return Ident(name=tok.text, line=tok.line)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.expr()
            self.expect(TokenKind.RPAREN)
            return inner
        raise CFDlangSyntaxError(
            f"expected identifier or '(', found {tok.text or '<eof>'!r}",
            tok.line,
            tok.column,
        )

    def index_pairs(self) -> List[Tuple[int, int]]:
        self.expect(TokenKind.LBRACKET)
        pairs: List[Tuple[int, int]] = []
        while self.peek().kind is TokenKind.LBRACKET:
            self.advance()
            a = self.expect(TokenKind.INT).int_value
            b = self.expect(TokenKind.INT).int_value
            self.expect(TokenKind.RBRACKET)
            pairs.append((a, b))
        tok = self.expect(TokenKind.RBRACKET)
        if not pairs:
            raise CFDlangSyntaxError("contraction needs at least one index pair", tok.line, tok.column)
        return pairs


def parse_program(source: str) -> Program:
    """Parse CFDlang source text into an (untyped) AST."""
    return _Parser(Lexer(source).tokenize()).program()
