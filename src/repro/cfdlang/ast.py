"""Abstract syntax tree for CFDlang programs.

Nodes carry an optional ``shape`` attribute filled in by semantic analysis
(:mod:`repro.cfdlang.sema`); the parser leaves it ``None``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class VarKind(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    LOCAL = "local"


@dataclass
class Node:
    """Base class; ``line`` is the 1-based source line (or -1 for built)."""

    line: int = field(default=-1, kw_only=True)


@dataclass
class Expr(Node):
    shape: Optional[Tuple[int, ...]] = field(default=None, kw_only=True)


@dataclass
class Ident(Expr):
    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class Outer(Expr):
    """n-ary outer (tensor) product ``a # b # c``."""

    factors: List[Expr] = field(default_factory=list)

    def __str__(self) -> str:
        return " # ".join(_paren(f, self) for f in self.factors)


@dataclass
class Contract(Expr):
    """Contraction ``operand . [[a b] ...]`` over dimension pairs."""

    operand: Expr = None  # type: ignore[assignment]
    pairs: List[Tuple[int, int]] = field(default_factory=list)

    def __str__(self) -> str:
        body = " ".join(f"[{a} {b}]" for a, b in self.pairs)
        return f"{_paren(self.operand, self)} . [{body}]"


@dataclass
class _BinOp(Expr):
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]
    op: str = "?"

    def __str__(self) -> str:
        return f"{_paren(self.lhs, self)} {self.op} {_paren(self.rhs, self)}"


@dataclass
class Hadamard(_BinOp):
    """Entry-wise product ``a * b``."""

    op: str = "*"


@dataclass
class Div(_BinOp):
    """Entry-wise division ``a / b``."""

    op: str = "/"


@dataclass
class Add(_BinOp):
    op: str = "+"


@dataclass
class Sub(_BinOp):
    op: str = "-"


_PRECEDENCE = {Ident: 5, Contract: 3, Outer: 4, Hadamard: 2, Div: 2, Add: 1, Sub: 1}


def _prec(e: Expr) -> int:
    return _PRECEDENCE.get(type(e), 5)


def _paren(child: Expr, parent: Expr) -> str:
    s = str(child)
    if _prec(child) < _prec(parent):
        return f"({s})"
    return s


@dataclass
class TypeDecl(Node):
    name: str = ""
    shape: Tuple[int, ...] = ()

    def __str__(self) -> str:
        return f"type {self.name} : [{' '.join(str(d) for d in self.shape)}]"


@dataclass
class VarDecl(Node):
    name: str = ""
    kind: VarKind = VarKind.LOCAL
    shape: Tuple[int, ...] = ()
    type_name: Optional[str] = None  # when declared via a type alias

    def __str__(self) -> str:
        kind = "" if self.kind is VarKind.LOCAL else f" {self.kind.value}"
        ty = self.type_name or f"[{' '.join(str(d) for d in self.shape)}]"
        return f"var{kind} {self.name} : {ty}"


@dataclass
class Assign(Node):
    target: str = ""
    value: Expr = None  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass
class Program(Node):
    typedecls: List[TypeDecl] = field(default_factory=list)
    decls: List[VarDecl] = field(default_factory=list)
    stmts: List[Assign] = field(default_factory=list)

    def decl(self, name: str) -> VarDecl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(name)

    def inputs(self) -> List[VarDecl]:
        return [d for d in self.decls if d.kind is VarKind.INPUT]

    def outputs(self) -> List[VarDecl]:
        return [d for d in self.decls if d.kind is VarKind.OUTPUT]

    def locals(self) -> List[VarDecl]:
        return [d for d in self.decls if d.kind is VarKind.LOCAL]


def walk(expr: Expr):
    """Yield all nodes of an expression tree, pre-order."""
    yield expr
    if isinstance(expr, Outer):
        for f in expr.factors:
            yield from walk(f)
    elif isinstance(expr, Contract):
        yield from walk(expr.operand)
    elif isinstance(expr, _BinOp):
        yield from walk(expr.lhs)
        yield from walk(expr.rhs)


def idents_used(expr: Expr) -> List[str]:
    """Names referenced by an expression, in first-use order."""
    out: List[str] = []
    for n in walk(expr):
        if isinstance(n, Ident) and n.name not in out:
            out.append(n.name)
    return out
