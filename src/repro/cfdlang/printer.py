"""Pretty-printer: AST back to CFDlang source (round-trip tested)."""

from __future__ import annotations

from repro.cfdlang.ast import Program


def print_program(prog: Program) -> str:
    """Render a program as canonical CFDlang source text."""
    lines = []
    for td in prog.typedecls:
        lines.append(str(td))
    for d in prog.decls:
        lines.append(str(d))
    for s in prog.stmts:
        lines.append(str(s))
    return "\n".join(lines) + "\n"
