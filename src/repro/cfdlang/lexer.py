"""Tokenizer for CFDlang source."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CFDlangSyntaxError


class TokenKind(enum.Enum):
    VAR = "var"
    TYPE = "type"
    INPUT = "input"
    OUTPUT = "output"
    IDENT = "ident"
    INT = "int"
    COLON = ":"
    EQUALS = "="
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    HASH = "#"
    STAR = "*"
    SLASH = "/"
    PLUS = "+"
    MINUS = "-"
    DOT = "."
    EOF = "<eof>"


_KEYWORDS = {
    "var": TokenKind.VAR,
    "type": TokenKind.TYPE,
    "input": TokenKind.INPUT,
    "output": TokenKind.OUTPUT,
}

_PUNCT = {
    ":": TokenKind.COLON,
    "=": TokenKind.EQUALS,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "#": TokenKind.HASH,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    ".": TokenKind.DOT,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def int_value(self) -> int:
        if self.kind is not TokenKind.INT:
            raise CFDlangSyntaxError(f"token {self.text!r} is not an integer", self.line, self.column)
        return int(self.text)


class Lexer:
    """Converts CFDlang source text into a token stream.

    Supports ``//`` line comments (``#`` is the outer-product operator, so
    hash comments are not available in this language).
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> CFDlangSyntaxError:
        return CFDlangSyntaxError(message, self.line, self.column)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def tokens(self) -> Iterator[Token]:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self.pos + 1 < len(src) and src[self.pos + 1] == "/":
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
                continue
            line, col = self.line, self.column
            if ch.isdigit():
                start = self.pos
                while self.pos < len(src) and src[self.pos].isdigit():
                    self._advance()
                yield Token(TokenKind.INT, src[start : self.pos], line, col)
                continue
            if ch.isalpha() or ch == "_":
                start = self.pos
                while self.pos < len(src) and (src[self.pos].isalnum() or src[self.pos] == "_"):
                    self._advance()
                text = src[start : self.pos]
                yield Token(_KEYWORDS.get(text, TokenKind.IDENT), text, line, col)
                continue
            if ch == "/":
                self._advance()
                yield Token(TokenKind.SLASH, "/", line, col)
                continue
            if ch in _PUNCT:
                self._advance()
                yield Token(_PUNCT[ch], ch, line, col)
                continue
            raise self._error(f"unexpected character {ch!r}")
        yield Token(TokenKind.EOF, "", self.line, self.column)

    def tokenize(self) -> List[Token]:
        return list(self.tokens())
