"""Dependence-driven rescheduling (step iii of Fig. 4; "Pluto-lite").

The paper uses isl's Pluto scheduler with RAW dependence distance as the
cost function "to reduce the dependence distance and thus the live
intervals", plus a RAR term that "attempts to place the statements at
coincident schedule space points" to reduce pressure on temporary storage.

This module implements the same objective over the schedule family our flow
uses (stage ordering + per-statement loop permutation):

* statement order: the legal (topological) order minimizing
  ``sum_over_RAW(bytes(tensor) * stage_distance)`` with a RAR-coincidence
  tie-break;
* loop order: the permutation maximizing layout consecutivity (stride-0/1
  innermost accesses), preferring reduction-innermost so code generation can
  use a register accumulator (HLS-friendly).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Sequence, Tuple

from repro.poly.dataflow import (
    statement_rar_pairs,
    statement_raw_deps,
    check_schedule_legal,
)
from repro.poly.schedule import (
    PolyProgram,
    PolyStatement,
    with_loop_permutation,
    with_statement_order,
)
from repro.utils import stable_topo_orders


@dataclass(frozen=True)
class RescheduleOptions:
    """Knobs for the rescheduler (exposed as compiler parameters).

    ``reduction_placement`` controls where reduction loops land:

    * ``"innermost"`` — register-accumulator codegen (natural for
      non-pipelined or inner-pipelined kernels);
    * ``"outside"``   — keep a non-reduction loop innermost so the
      memory-accumulation revisit distance covers the fp64 adder latency
      and flattened pipelining reaches II=1 (the paper's 200 MHz kernels);
    * ``"free"``      — consecutivity alone decides.
    """

    reorder_statements: bool = True
    permute_loops: bool = True
    max_orders: int = 2000          # cap on explored topological orders
    rar_weight: float = 0.1         # RAR coincidence weight vs RAW distance
    reduction_placement: str = "innermost"

    def __post_init__(self) -> None:
        if self.reduction_placement not in ("innermost", "outside", "free"):
            raise ValueError(
                f"unknown reduction_placement {self.reduction_placement!r}"
            )


def raw_cost(prog: PolyProgram) -> float:
    """Live-interval proxy: sum of bytes x stage-distance over RAW edges."""
    total = 0.0
    for dep in statement_raw_deps(prog):
        dist = prog.stage_of(prog.statement(dep.consumer)) - prog.stage_of(
            prog.statement(dep.producer)
        )
        total += prog.function.decls[dep.tensor].n_bytes * dist
    return total


def rar_cost(prog: PolyProgram) -> float:
    """RAR coincidence: smaller stage spread between co-readers is better."""
    total = 0.0
    for dep in statement_rar_pairs(prog):
        d = abs(
            prog.stage_of(prog.statement(dep.consumer))
            - prog.stage_of(prog.statement(dep.producer))
        )
        total += prog.function.decls[dep.tensor].n_bytes * d
    return total


def schedule_cost(prog: PolyProgram, options: RescheduleOptions) -> float:
    return raw_cost(prog) + options.rar_weight * rar_cost(prog)


def _choose_statement_order(prog: PolyProgram, options: RescheduleOptions) -> PolyProgram:
    names = [s.name for s in prog.statements]
    edges: Dict[str, List[str]] = {n: [] for n in names}
    for dep in statement_raw_deps(prog):
        edges[dep.producer].append(dep.consumer)
    best = None
    for order in stable_topo_orders(names, edges, limit=options.max_orders):
        cand = with_statement_order(prog, order)
        cost = schedule_cost(cand, options)
        key = (cost, order)
        if best is None or key < best[0]:
            best = (key, cand)
    assert best is not None, "no legal statement order (dependence cycle?)"
    return best[1]


def innermost_stride(prog: PolyProgram, stmt: PolyStatement, perm: Sequence[int]) -> List[int]:
    """Stride of each access w.r.t. the innermost loop under ``perm``.

    Stride 0 means loop-invariant (fine: a register); 1 means consecutive.
    """
    inner_dim = stmt.loop_dims[perm[-1]]
    strides: List[int] = []
    for acc in (stmt.write, *stmt.reads):
        layout = prog.layouts[acc.tensor]
        dim_names = tuple(f"x{i}" for i in range(len(layout.shape)))
        addr = layout.aff(dim_names).compose(acc.fn)  # loop dims -> address
        strides.append(addr.exprs[0].coeff(inner_dim))
    return strides


def _consecutivity_cost(
    prog: PolyProgram, stmt: PolyStatement, perm: Sequence[int], placement: str
) -> Tuple[int, int]:
    strides = innermost_stride(prog, stmt, perm)
    bad = sum(1 for s in strides if s not in (0, 1))
    nd = len(stmt.loop_dims)
    if not stmt.is_reduction or placement == "free":
        return (bad, 0)
    red_indices = set(range(stmt.out_rank, nd))
    if placement == "innermost":
        # reduction dims must form the innermost contiguous suffix
        red_positions = [perm.index(i) for i in red_indices]
        ok = all(p >= nd - len(red_positions) for p in red_positions)
    else:  # "outside": the innermost loop must not be a reduction dim
        ok = perm[-1] not in red_indices
    return (bad, 0 if ok else 1)


def _choose_loop_orders(prog: PolyProgram, options: RescheduleOptions) -> PolyProgram:
    out = prog
    for s in prog.statements:
        nd = len(s.loop_dims)
        if nd <= 1 or nd > 6:
            continue
        best = None
        for perm in permutations(range(nd)):
            bad, red = _consecutivity_cost(out, s, perm, options.reduction_placement)
            # Reduction placement dominates: PLMs are BRAMs with single-cycle
            # random access, so stride only breaks ties, but a misplaced
            # reduction limits the achievable II (or forbids the register
            # accumulator, depending on the placement policy).
            key = (red, bad, perm)
            if best is None or key < best:
                best = key
        assert best is not None
        out = with_loop_permutation(out, s.name, best[2])
    return out


def reschedule(prog: PolyProgram, options: RescheduleOptions | None = None) -> PolyProgram:
    """Compute an optimized legal schedule from the reference schedule."""
    options = options or RescheduleOptions()
    out = prog
    if options.reorder_statements:
        out = _choose_statement_order(out, options)
    if options.permute_loops:
        out = _choose_loop_orders(out, options)
    check_schedule_legal(out)
    return out
