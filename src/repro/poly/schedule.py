"""Polyhedral statements and schedules (Sec. IV-B/IV-C).

Every IR assignment is promoted to a *statement* whose instances range over
an iteration domain.  Contractions carry an **inner domain** that includes
the reduction indices (the paper "constructs an inner operand map" and uses
"inner domain maps to lower reductions into schedule space"); entry-wise
statements iterate only over output indices.

A schedule maps statement instances into an anonymous integer tuple space
ordered lexicographically.  The **reference schedule** executes statements
in program order, iterating output dims outermost and reduction dims
innermost:

    S_k : stmt_k[d...] -> [k, d..., 0-padding]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PolyhedralError
from repro.layout import Layout, default_layouts
from repro.poly.aff import AffExpr, AffTuple
from repro.poly.iset import BasicSet
from repro.poly.space import Space, anonymous
from repro.teil.ops import Contraction, Ewise
from repro.teil.program import Function


@dataclass(frozen=True)
class Access:
    """One tensor access: ``tensor[fn(loop dims)]``."""

    tensor: str
    fn: AffTuple  # loop dims -> tensor index space

    def __str__(self) -> str:
        return f"{self.tensor}[{', '.join(str(e) for e in self.fn.exprs)}]"


@dataclass(frozen=True)
class PolyStatement:
    """A statement with iteration domain, write access, and read accesses."""

    name: str
    index: int                      # position in the original program
    target: str
    loop_dims: Tuple[str, ...]      # output dims first, then reduction dims
    out_rank: int                   # number of output dims
    domain: BasicSet                # over loop_dims (the inner domain)
    write: Access
    reads: Tuple[Access, ...]
    kind: str                       # 'contract' | 'ewise:*' | 'ewise:+' ...

    @property
    def reduction_dims(self) -> Tuple[str, ...]:
        return self.loop_dims[self.out_rank :]

    @property
    def is_reduction(self) -> bool:
        return self.out_rank < len(self.loop_dims)

    @property
    def space(self) -> Space:
        return self.domain.space

    def operand_tensors(self) -> Tuple[str, ...]:
        return tuple(r.tensor for r in self.reads)

    def __str__(self) -> str:
        reads = ", ".join(str(r) for r in self.reads)
        return f"{self.name}: {self.write} <- {self.kind}({reads}) over {self.loop_dims}"


@dataclass
class PolyProgram:
    """Statements plus a schedule into a common schedule space."""

    function: Function
    statements: List[PolyStatement]
    schedules: Dict[str, AffTuple]  # statement name -> loop dims -> sched space
    sched_rank: int
    layouts: Dict[str, Layout] = field(default_factory=dict)

    def statement(self, name: str) -> PolyStatement:
        for s in self.statements:
            if s.name == name:
                return s
        raise PolyhedralError(f"no statement {name!r}")

    def writers_of(self, tensor: str) -> List[PolyStatement]:
        return [s for s in self.statements if s.write.tensor == tensor]

    def readers_of(self, tensor: str) -> List[PolyStatement]:
        return [s for s in self.statements if tensor in s.operand_tensors()]

    def schedule_of(self, stmt: PolyStatement) -> AffTuple:
        return self.schedules[stmt.name]

    def stage_of(self, stmt: PolyStatement) -> int:
        """The leading (constant) schedule coordinate of a statement."""
        lead = self.schedules[stmt.name].exprs[0]
        if not lead.is_constant:
            raise PolyhedralError(f"statement {stmt.name} has non-constant stage")
        return lead.const

    def statements_in_schedule_order(self) -> List[PolyStatement]:
        return sorted(self.statements, key=self.stage_of)

    def validate(self) -> "PolyProgram":
        stages = set()
        for s in self.statements:
            sched = self.schedules.get(s.name)
            if sched is None:
                raise PolyhedralError(f"statement {s.name} has no schedule")
            if sched.domain.dims != s.loop_dims:
                raise PolyhedralError(f"schedule domain mismatch for {s.name}")
            if sched.n_out != self.sched_rank:
                raise PolyhedralError(f"schedule rank mismatch for {s.name}")
            stages.add(self.stage_of(s))
        if len(stages) != len(self.statements):
            raise PolyhedralError("statements share a schedule stage")
        return self


def _operand_index_exprs(
    indices: Sequence[str], dims: Sequence[str]
) -> Tuple[AffExpr, ...]:
    dimset = set(dims)
    out = []
    for i in indices:
        if i not in dimset:
            raise PolyhedralError(f"operand index {i!r} not a loop dim")
        out.append(AffExpr.var(i))
    return tuple(out)


def build_statements(fn: Function) -> List[PolyStatement]:
    """Promote every IR assignment to a polyhedral statement (Sec. IV-C)."""
    shapes = fn.shapes()
    out: List[PolyStatement] = []
    for k, stmt in enumerate(fn.statements):
        name = f"s{k}"
        op = stmt.op
        if isinstance(op, Contraction):
            extents = op.index_extents(shapes)
            loop_dims = tuple(op.output_indices) + tuple(op.reduction_indices)
            out_rank = len(op.output_indices)
            dom_space = Space(name, loop_dims)
            domain = BasicSet.from_shape(dom_space, tuple(extents[i] for i in loop_dims))
            tgt_space = Space(stmt.target, tuple(f"d{j}" for j in range(out_rank)))
            write = Access(
                stmt.target,
                AffTuple(dom_space, _operand_index_exprs(op.output_indices, loop_dims), tgt_space),
            )
            reads = tuple(
                Access(
                    o,
                    AffTuple(
                        dom_space,
                        _operand_index_exprs(idx, loop_dims),
                        Space(o, tuple(f"d{j}" for j in range(len(idx)))),
                    ),
                )
                for o, idx in zip(op.operands, op.operand_indices)
            )
            out.append(
                PolyStatement(name, k, stmt.target, loop_dims, out_rank, domain, write, reads, "contract")
            )
        elif isinstance(op, Ewise):
            shape = op.output_shape(shapes)
            loop_dims = tuple(f"e{j}" for j in range(len(shape)))
            dom_space = Space(name, loop_dims)
            domain = BasicSet.from_shape(dom_space, shape)
            ident = _operand_index_exprs(loop_dims, loop_dims)
            mk_space = lambda t: Space(t, tuple(f"d{j}" for j in range(len(shape))))
            write = Access(stmt.target, AffTuple(dom_space, ident, mk_space(stmt.target)))
            reads = tuple(
                Access(o, AffTuple(dom_space, ident, mk_space(o))) for o in (op.lhs, op.rhs)
            )
            out.append(
                PolyStatement(
                    name, k, stmt.target, loop_dims, len(shape), domain, write, reads,
                    f"ewise:{op.kind.value}",
                )
            )
        else:  # pragma: no cover
            raise PolyhedralError(f"unknown op {type(op).__name__}")
    return out


def reference_schedule(
    fn: Function, layouts: Optional[Dict[str, Layout]] = None
) -> PolyProgram:
    """Construct the reference schedule (program order, loops in-order)."""
    stmts = build_statements(fn)
    max_depth = max((len(s.loop_dims) for s in stmts), default=0)
    rank = 1 + max_depth
    sched_space = anonymous(rank)
    schedules: Dict[str, AffTuple] = {}
    for k, s in enumerate(stmts):
        exprs: List[AffExpr] = [AffExpr.constant(k)]
        exprs += [AffExpr.var(d) for d in s.loop_dims]
        exprs += [AffExpr.constant(0)] * (rank - 1 - len(s.loop_dims))
        schedules[s.name] = AffTuple(s.space, tuple(exprs), sched_space)
    if layouts is None:
        layouts = default_layouts(fn.shapes())
    return PolyProgram(fn, stmts, schedules, rank, layouts).validate()


def with_statement_order(prog: PolyProgram, order: Sequence[str]) -> PolyProgram:
    """A copy of the program with statements re-staged in the given order.

    Loop dims keep their relative positions; only the leading stage constant
    changes.  Legality is the caller's responsibility (see dataflow checks).
    """
    if sorted(order) != sorted(s.name for s in prog.statements):
        raise PolyhedralError("order must be a permutation of statement names")
    schedules: Dict[str, AffTuple] = {}
    for new_stage, name in enumerate(order):
        old = prog.schedules[name]
        exprs = (AffExpr.constant(new_stage),) + old.exprs[1:]
        schedules[name] = AffTuple(old.domain, exprs, old.target)
    return PolyProgram(
        prog.function, prog.statements, schedules, prog.sched_rank, prog.layouts
    ).validate()


def with_loop_permutation(
    prog: PolyProgram, stmt_name: str, perm: Sequence[int]
) -> PolyProgram:
    """A copy with one statement's loop dims permuted in schedule space.

    ``perm[j]`` gives the loop-dim index placed at schedule position ``j+1``.
    Output/reduction roles are unchanged; only the traversal order differs.
    """
    s = prog.statement(stmt_name)
    nd = len(s.loop_dims)
    if sorted(perm) != list(range(nd)):
        raise PolyhedralError("invalid loop permutation")
    old = prog.schedules[stmt_name]
    exprs = [old.exprs[0]]
    exprs += [AffExpr.var(s.loop_dims[p]) for p in perm]
    exprs += [AffExpr.constant(0)] * (prog.sched_rank - 1 - nd)
    schedules = dict(prog.schedules)
    schedules[stmt_name] = AffTuple(old.domain, tuple(exprs), old.target)
    return PolyProgram(
        prog.function, prog.statements, schedules, prog.sched_rank, prog.layouts
    ).validate()


def virtual_boundary_stages(prog: PolyProgram) -> Tuple[int, int]:
    """Schedule stages of the virtual ``first``/``last`` statements that model
    host writes to inputs and reads from outputs (Sec. IV-F)."""
    stages = [prog.stage_of(s) for s in prog.statements]
    return (min(stages) - 1, max(stages) + 1)
