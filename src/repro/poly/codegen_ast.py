"""Loop-AST generation from a scheduled polyhedral program (step v).

The schedule family produced by this flow (constant leading stage, then a
permutation of the statement's loop dims) generates one perfect loop nest
per stage.  Contractions whose reduction dims form the innermost contiguous
suffix are emitted in accumulator style::

    for (out dims) { acc = 0; for (red dims) acc += ...; write acc; }

otherwise in memory-accumulate style (zero-init loop + in-place updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import PolyhedralError
from repro.poly.schedule import PolyProgram, PolyStatement


@dataclass(frozen=True)
class LoopDim:
    """One loop of a nest: ``for (var = lo; var <= hi; ++var)``."""

    var: str
    lo: int
    hi: int

    @property
    def trip_count(self) -> int:
        return self.hi - self.lo + 1


@dataclass(frozen=True)
class ComputeNode:
    """A statement placed inside its loop nest."""

    stmt: PolyStatement
    loops: Tuple[LoopDim, ...]          # outermost first, schedule order
    accumulator_style: bool             # reduction dims are innermost suffix
    n_reduction_loops: int

    @property
    def out_loops(self) -> Tuple[LoopDim, ...]:
        if self.n_reduction_loops == 0:
            return self.loops
        return self.loops[: -self.n_reduction_loops]

    @property
    def red_loops(self) -> Tuple[LoopDim, ...]:
        if self.n_reduction_loops == 0:
            return ()
        return self.loops[-self.n_reduction_loops :]

    @property
    def total_trip_count(self) -> int:
        n = 1
        for l in self.loops:
            n *= l.trip_count
        return n


@dataclass
class LoopAst:
    """Ordered stages of the kernel body."""

    stages: List[ComputeNode] = field(default_factory=list)

    @property
    def n_stages(self) -> int:
        return len(self.stages)


def scheduled_loop_dims(prog: PolyProgram, stmt: PolyStatement) -> Tuple[str, ...]:
    """Loop dims of a statement in schedule order (from its schedule exprs)."""
    sched = prog.schedules[stmt.name]
    dims: List[str] = []
    for e in sched.exprs[1:]:
        used = e.used_dims()
        if len(used) == 1:
            dims.append(used[0])
        elif len(used) > 1:
            raise PolyhedralError(
                f"schedule expr {e} of {stmt.name} is not a loop-dim permutation"
            )
    if sorted(dims) != sorted(stmt.loop_dims):
        raise PolyhedralError(f"schedule of {stmt.name} does not cover its loop dims")
    return tuple(dims)


def build_loop_ast(prog: PolyProgram) -> LoopAst:
    """Generate the loop AST for all statements in schedule order."""
    ast = LoopAst()
    for stmt in prog.statements_in_schedule_order():
        dims = scheduled_loop_dims(prog, stmt)
        loops = []
        for d in dims:
            lo, hi = stmt.domain.dim_bounds(d)
            if lo is None or hi is None:
                raise PolyhedralError(f"unbounded loop dim {d} in {stmt.name}")
            loops.append(LoopDim(d, lo, hi))
        red = set(stmt.reduction_dims)
        n_red = len(red)
        acc_style = n_red > 0 and all(d in red for d in dims[len(dims) - n_red :])
        ast.stages.append(ComputeNode(stmt, tuple(loops), acc_style, n_red))
    return ast


def kernel_trip_counts(ast: LoopAst) -> List[Tuple[str, int]]:
    """(statement, total trip count) per stage — the HLS latency input."""
    return [(c.stmt.name, c.total_trip_count) for c in ast.stages]
