"""Integer sets: conjunctions of affine constraints, and unions thereof.

A :class:`BasicSet` is ``{ x in Z^n : exists e in Z^k, A (x,e) + c >= 0,
E (x,e) + d == 0 }`` over a named :class:`~repro.poly.space.Space` of
*visible* dims ``x``; the trailing ``k`` columns are existential.  An
:class:`ISet` is a finite union of basic sets (lexicographic order relations
are disjunctive).

Design notes
------------
* No symbolic parameters: CFDlang shapes are static, so every set the flow
  manipulates is bounded in its visible dims.
* Projection (``project_out``) *marks dims existential* instead of running
  Fourier–Motzkin, which keeps integer semantics exact (e.g. the image of a
  box under a strided layout ``i -> 11 i + 5`` stays the strided set, not its
  convex hull).  FM elimination is used only for rational bounds and rational
  emptiness pre-checks, where over-approximation is sound.
* ``is_empty()`` is exact: rational pre-check, then bounded integer search.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PolyhedralError
from repro.poly.aff import AffExpr, AffTuple
from repro.poly.space import Space

# A constraint is (coeffs, const, is_eq): sum(coeffs*x) + const >= 0  (or == 0)
Constraint = Tuple[Tuple[int, ...], int, bool]


def _gcd_many(values: Sequence[int]) -> int:
    g = 0
    for v in values:
        g = math.gcd(g, abs(v))
    return g


def _normalize_constraint(coeffs: Tuple[int, ...], const: int, eq: bool) -> Optional[Constraint]:
    """Canonicalize one constraint; None if trivially true; a constant-false
    marker ``(0...0, -1, False)`` if unsatisfiable."""
    g = _gcd_many(coeffs)
    zero = tuple(0 for _ in coeffs)
    if g == 0:
        if eq:
            return None if const == 0 else (zero, -1, False)
        return None if const >= 0 else (zero, -1, False)
    if eq:
        if const % g != 0:
            return (zero, -1, False)  # no integer solution
        return (tuple(c // g for c in coeffs), const // g, True)
    # integer tightening: a.x + c >= 0  <=>  (a/g).x + floor(c/g) >= 0
    return (tuple(c // g for c in coeffs), math.floor(const / g), False)


class _RawSystem:
    """A positional constraint system used for FM elimination (no spaces)."""

    __slots__ = ("width", "cons", "false")

    def __init__(self, width: int, cons: Sequence[Constraint]) -> None:
        self.width = width
        self.false = False
        out: List[Constraint] = []
        seen = set()
        for coeffs, const, eq in cons:
            n = _normalize_constraint(tuple(coeffs), const, eq)
            if n is None:
                continue
            if all(c == 0 for c in n[0]) and n[1] < 0:
                self.false = True
            if n not in seen:
                seen.add(n)
                out.append(n)
        self.cons = out

    def eliminate(self, k: int) -> "_RawSystem":
        """Rational FM elimination of column k."""
        cons = self.cons
        subst: Optional[Constraint] = None
        for c in cons:
            if c[2] and abs(c[0][k]) == 1:
                subst = c
                break
        if subst is None:
            for c in cons:
                if c[2] and c[0][k] != 0:
                    subst = c
                    break
        new_cons: List[Constraint] = []
        if subst is not None:
            a = subst[0][k]
            s = 1 if a > 0 else -1
            for c in cons:
                if c is subst:
                    continue
                b = c[0][k]
                if b == 0:
                    new_cons.append(c)
                    continue
                coeffs = tuple(abs(a) * cc - s * b * sc for cc, sc in zip(c[0], subst[0]))
                const = abs(a) * c[1] - s * b * subst[1]
                new_cons.append((coeffs, const, c[2]))
        else:
            lowers, uppers = [], []
            for c in cons:
                a = c[0][k]
                if a == 0:
                    new_cons.append(c)
                elif a > 0:
                    lowers.append(c)
                else:
                    uppers.append(c)
            for lc in lowers:
                for uc in uppers:
                    a, b = lc[0][k], -uc[0][k]
                    coeffs = tuple(b * cl + a * cu for cl, cu in zip(lc[0], uc[0]))
                    const = b * lc[1] + a * uc[1]
                    new_cons.append((coeffs, const, False))
        dropped = [(c[0][:k] + c[0][k + 1 :], c[1], c[2]) for c in new_cons]
        return _RawSystem(self.width - 1, dropped)

    def bounds_of(self, k: int) -> Tuple[Optional[int], Optional[int]]:
        """Rational bounds of column k after eliminating all others."""
        sys = self
        col = k
        for _ in range(self.width - 1):
            drop = 0 if col != 0 else 1
            sys = sys.eliminate(drop)
            if drop < col:
                col -= 1
            if sys.false:
                return (1, 0)
        lo: Optional[int] = None
        hi: Optional[int] = None
        for (a,), c, eq in sys.cons:
            if a == 0:
                continue
            if eq:
                if (-c) % a != 0:
                    return (1, 0)
                v = (-c) // a
                lo = v if lo is None else max(lo, v)
                hi = v if hi is None else min(hi, v)
            elif a > 0:
                b = math.ceil(-c / a)
                lo = b if lo is None else max(lo, b)
            else:
                b = math.floor(c / -a)
                hi = b if hi is None else min(hi, b)
        return (lo, hi)

    def is_empty_rational(self) -> bool:
        sys = self
        if sys.false:
            return True
        for _ in range(self.width):
            sys = sys.eliminate(0)
            if sys.false:
                return True
        return sys.false

    def fix(self, k: int, value: int) -> "_RawSystem":
        cons = [
            (c[0][:k] + c[0][k + 1 :], c[1] + c[0][k] * value, c[2]) for c in self.cons
        ]
        return _RawSystem(self.width - 1, cons)

    def enumerate(self, n_visible: int, budget: List[int]) -> Iterator[Tuple[int, ...]]:
        """Yield assignments to the first ``n_visible`` columns for which the
        remaining (existential) columns are satisfiable."""
        if self.false:
            return
        if n_visible == 0:
            if self._satisfiable(budget):
                yield ()
            return
        lo, hi = self.bounds_of(0)
        if lo is None or hi is None:
            raise PolyhedralError("cannot enumerate unbounded dim")
        for v in range(lo, hi + 1):
            budget[0] -= 1
            if budget[0] < 0:
                raise PolyhedralError("point enumeration budget exceeded")
            sub = self.fix(0, v)
            for rest in sub.enumerate(n_visible - 1, budget):
                yield (v,) + rest

    def _satisfiable(self, budget: List[int]) -> bool:
        """Exact integer satisfiability of a system of existential columns."""
        if self.false:
            return False
        if self.width == 0:
            return True
        if self.is_empty_rational():
            return False
        lo, hi = self.bounds_of(0)
        if lo is None or hi is None:
            # Unbounded existential: rational non-empty + unbounded direction
            # means some integer point exists for our (box-derived) systems.
            return True
        for v in range(lo, hi + 1):
            budget[0] -= 1
            if budget[0] < 0:
                raise PolyhedralError("satisfiability budget exceeded")
            if self.fix(0, v)._satisfiable(budget):
                return True
        return False


class BasicSet:
    """A conjunction of integer affine constraints over visible + existential dims."""

    __slots__ = ("space", "n_exists", "constraints", "_known_empty")

    def __init__(
        self,
        space: Space,
        constraints: Sequence[Constraint] = (),
        n_exists: int = 0,
    ) -> None:
        self.space = space
        self.n_exists = int(n_exists)
        width = space.rank + self.n_exists
        cons: List[Constraint] = []
        self._known_empty = False
        seen = set()
        for coeffs, const, eq in constraints:
            if len(coeffs) != width:
                raise PolyhedralError(
                    f"constraint arity {len(coeffs)} != width {width} "
                    f"(rank {space.rank} + {self.n_exists} existentials)"
                )
            norm = _normalize_constraint(tuple(int(c) for c in coeffs), int(const), bool(eq))
            if norm is None:
                continue
            if all(c == 0 for c in norm[0]) and norm[1] < 0:
                self._known_empty = True
            if norm not in seen:
                seen.add(norm)
                cons.append(norm)
        self.constraints = tuple(cons)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def universe(space: Space) -> "BasicSet":
        return BasicSet(space, ())

    @staticmethod
    def empty(space: Space) -> "BasicSet":
        return BasicSet(space, ((tuple(0 for _ in range(space.rank)), -1, False),))

    @staticmethod
    def from_box(space: Space, bounds: Sequence[Tuple[int, int]]) -> "BasicSet":
        """Box ``lo_i <= x_i <= hi_i`` (inclusive)."""
        if len(bounds) != space.rank:
            raise PolyhedralError("bounds arity mismatch")
        cons: List[Constraint] = []
        for i, (lo, hi) in enumerate(bounds):
            e = [0] * space.rank
            e[i] = 1
            cons.append((tuple(e), -int(lo), False))
            e2 = [0] * space.rank
            e2[i] = -1
            cons.append((tuple(e2), int(hi), False))
        return BasicSet(space, cons)

    @staticmethod
    def from_shape(space: Space, shape: Sequence[int]) -> "BasicSet":
        """The dense index domain ``0 <= x_i < shape_i`` of a tensor."""
        return BasicSet.from_box(space, [(0, s - 1) for s in shape])

    # -- shape ---------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.space.rank

    @property
    def width(self) -> int:
        return self.space.rank + self.n_exists

    def _raw(self) -> _RawSystem:
        return _RawSystem(self.width, self.constraints)

    # -- predicates ------------------------------------------------------------
    def contains(self, point: Sequence[int], budget: int = 500_000) -> bool:
        if len(point) != self.rank:
            raise PolyhedralError("point rank mismatch")
        sys = self._raw()
        for v in point:
            sys = sys.fix(0, int(v))
        return sys._satisfiable([budget])

    def is_empty_rational(self) -> bool:
        if self._known_empty:
            return True
        return self._raw().is_empty_rational()

    def is_empty(self, exact: bool = True, budget: int = 500_000) -> bool:
        if self.is_empty_rational():
            return True
        if not exact:
            return False
        try:
            return not self._raw()._satisfiable([budget])
        except PolyhedralError:
            return False  # budget exhausted: conservatively non-empty

    # -- constraint-level operations -----------------------------------------
    def _lift(self, expr_vec: Tuple[int, ...], const: int, eq: bool) -> Constraint:
        return (expr_vec + tuple(0 for _ in range(self.n_exists)), const, eq)

    def with_constraint(self, expr: AffExpr, *, eq: bool = False, negate: bool = False) -> "BasicSet":
        """Add ``expr >= 0`` (or ``== 0``); ``negate`` adds ``-expr-1 >= 0``."""
        vec = expr.as_vector(self.space.dims)
        const = expr.const
        if negate:
            vec = tuple(-c for c in vec)
            const = -const - 1
        return BasicSet(
            self.space, self.constraints + (self._lift(vec, const, eq),), self.n_exists
        )

    def intersect(self, other: "BasicSet") -> "BasicSet":
        if other.space.dims != self.space.dims:
            raise PolyhedralError(
                f"intersect requires same dims: {self.space.dims} vs {other.space.dims}"
            )
        n = self.rank
        ke, ko = self.n_exists, other.n_exists
        cons: List[Constraint] = []
        for coeffs, const, eq in self.constraints:
            cons.append((coeffs + tuple(0 for _ in range(ko)), const, eq))
        for coeffs, const, eq in other.constraints:
            cons.append(
                (coeffs[:n] + tuple(0 for _ in range(ke)) + coeffs[n:], const, eq)
            )
        return BasicSet(self.space, cons, ke + ko)

    def fix_dim(self, dim: str, value: int) -> "BasicSet":
        """Substitute a constant for one visible dim."""
        i = self.space.dim_index(dim)
        new_space = Space(self.space.name, self.space.dims[:i] + self.space.dims[i + 1 :])
        cons = [
            (c[0][:i] + c[0][i + 1 :], c[1] + c[0][i] * value, c[2])
            for c in self.constraints
        ]
        return BasicSet(new_space, cons, self.n_exists)

    def rename_dims(self, mapping: Mapping[str, str]) -> "BasicSet":
        new_space = Space(self.space.name, tuple(mapping.get(d, d) for d in self.space.dims))
        return BasicSet(new_space, self.constraints, self.n_exists)

    def with_space(self, space: Space) -> "BasicSet":
        """Reinterpret visible dims over a same-rank space (positional)."""
        if space.rank != self.rank:
            raise PolyhedralError("with_space rank mismatch")
        return BasicSet(space, self.constraints, self.n_exists)

    # -- projection -------------------------------------------------------------
    def project_out(self, dims: Sequence[str]) -> "BasicSet":
        """Existentially project out the named visible dims (exact)."""
        names = list(dims)
        keep = [d for d in self.space.dims if d not in set(names)]
        for d in names:
            self.space.dim_index(d)  # validate
        perm = [self.space.dim_index(d) for d in keep] + [
            self.space.dim_index(d) for d in names
        ]
        full_perm = perm + list(range(self.rank, self.width))
        cons = [
            (tuple(c[0][p] for p in full_perm), c[1], c[2]) for c in self.constraints
        ]
        return BasicSet(Space(self.space.name, tuple(keep)), cons, self.n_exists + len(names))

    def project_onto(self, dims: Sequence[str]) -> "BasicSet":
        """Keep only the named visible dims, in the given order."""
        drop = [d for d in self.space.dims if d not in set(dims)]
        out = self.project_out(drop)
        if tuple(dims) != out.space.dims:
            perm = [out.space.dim_index(d) for d in dims]
            full_perm = perm + list(range(out.rank, out.width))
            cons = [
                (tuple(c[0][p] for p in full_perm), c[1], c[2]) for c in out.constraints
            ]
            out = BasicSet(Space(out.space.name, tuple(dims)), cons, out.n_exists)
        return out

    # -- bounds / enumeration ----------------------------------------------------
    def dim_bounds(self, dim: str) -> Tuple[Optional[int], Optional[int]]:
        """Rational bounds of one visible dim (over-approximate but sound)."""
        return self._raw().bounds_of(self.space.dim_index(dim))

    def points(self, limit: int = 1_000_000) -> Iterator[Tuple[int, ...]]:
        """Enumerate integer points of the visible dims (exact)."""
        if self._known_empty:
            return iter(())
        return self._raw().enumerate(self.rank, [limit])

    def sample(self, budget: int = 500_000) -> Optional[Tuple[int, ...]]:
        """Find one visible point, or None if empty (within budget)."""
        try:
            for p in self.points(limit=budget):
                return p
        except PolyhedralError:
            return None
        return None

    # -- images --------------------------------------------------------------
    def apply(self, fn: AffTuple) -> "BasicSet":
        """Exact image of the set under an affine function."""
        if fn.domain.rank != self.rank:
            raise PolyhedralError("apply: function domain rank mismatch")
        n_in, n_out = self.rank, fn.n_out
        out_dims = (
            fn.target.dims
            if fn.target.rank == n_out
            else tuple(f"__o{j}" for j in range(n_out))
        )
        width = n_out + n_in + self.n_exists  # visible out, then exist (in, old)
        cons: List[Constraint] = []
        for coeffs, const, eq in self.constraints:
            vec = tuple(0 for _ in range(n_out)) + coeffs
            cons.append((vec, const, eq))
        for j, e in enumerate(fn.exprs):
            vec_in = e.as_vector(fn.domain.dims)
            vec = [0] * width
            vec[j] = -1
            for i, c in enumerate(vec_in):
                vec[n_out + i] = c
            cons.append((tuple(vec), e.const, True))  # f_j(x) - y_j == 0
        return BasicSet(Space(fn.target.name, out_dims), cons, n_in + self.n_exists)

    def preimage(self, fn: AffTuple) -> "BasicSet":
        """``{ x : f(x) in self }`` — exact by substitution."""
        if fn.n_out != self.rank:
            raise PolyhedralError("preimage: function range rank mismatch")
        if self.n_exists:
            # keep existentials: substitute into visible columns only
            width = fn.domain.rank + self.n_exists
            cons: List[Constraint] = []
            for coeffs, const, eq in self.constraints:
                expr = AffExpr.constant(const)
                for c, e in zip(coeffs[: self.rank], fn.exprs):
                    expr = expr + e * c
                vec = list(expr.as_vector(fn.domain.dims)) + list(coeffs[self.rank :])
                cons.append((tuple(vec), expr.const, eq))
            return BasicSet(fn.domain, cons, self.n_exists)
        cons = []
        for coeffs, const, eq in self.constraints:
            expr = AffExpr.constant(const)
            for c, e in zip(coeffs, fn.exprs):
                expr = expr + e * c
            cons.append((expr.as_vector(fn.domain.dims), expr.const, eq))
        return BasicSet(fn.domain, cons)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BasicSet({self.space}, {len(self.constraints)} cons, "
            f"{self.n_exists} exists)"
        )


class ISet:
    """A finite union of :class:`BasicSet` over a common visible space."""

    __slots__ = ("space", "parts")

    def __init__(self, space: Space, parts: Sequence[BasicSet] = ()) -> None:
        self.space = space
        kept = []
        for p in parts:
            if p.space.dims != space.dims:
                raise PolyhedralError("union over mismatched spaces")
            if not p._known_empty:
                kept.append(p)
        self.parts = tuple(kept)

    @staticmethod
    def from_basic(bs: BasicSet) -> "ISet":
        return ISet(bs.space, (bs,))

    @staticmethod
    def empty(space: Space) -> "ISet":
        return ISet(space, ())

    def union(self, other: "ISet | BasicSet") -> "ISet":
        parts = other.parts if isinstance(other, ISet) else (other,)
        return ISet(self.space, self.parts + tuple(parts))

    def intersect(self, other: "ISet | BasicSet") -> "ISet":
        oparts = other.parts if isinstance(other, ISet) else (other,)
        out = [a.intersect(b) for a in self.parts for b in oparts]
        return ISet(self.space, out)

    def is_empty(self, exact: bool = True, budget: int = 500_000) -> bool:
        return all(p.is_empty(exact=exact, budget=budget) for p in self.parts)

    def contains(self, point: Sequence[int]) -> bool:
        return any(p.contains(point) for p in self.parts)

    def points(self, limit: int = 1_000_000) -> Iterator[Tuple[int, ...]]:
        seen = set()
        for p in self.parts:
            for pt in p.points(limit=limit):
                if pt not in seen:
                    seen.add(pt)
                    yield pt

    def project_out(self, dims: Sequence[str]) -> "ISet":
        parts = [p.project_out(dims) for p in self.parts]
        space = (
            parts[0].space
            if parts
            else Space(self.space.name, tuple(d for d in self.space.dims if d not in set(dims)))
        )
        return ISet(space, parts)

    def apply(self, fn: AffTuple) -> "ISet":
        parts = [p.apply(fn) for p in self.parts]
        if parts:
            return ISet(parts[0].space, parts)
        out_dims = (
            fn.target.dims
            if fn.target.rank == fn.n_out
            else tuple(f"__o{j}" for j in range(fn.n_out))
        )
        return ISet(Space(fn.target.name, out_dims), ())

    def __repr__(self) -> str:  # pragma: no cover
        return " U ".join(repr(p) for p in self.parts) or "{}"
