"""Named tuple spaces.

A :class:`Space` identifies an index tuple space like ``t[i, j, k]`` from the
paper's Sec. IV-B: a tuple name (the tensor/statement it indexes) plus an
ordered list of dimension names.  Scalars are 0-dimensional spaces with
exactly one valid (empty) index tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

from repro.errors import PolyhedralError


@dataclass(frozen=True)
class Space:
    """An n-dimensional named index space."""

    name: str
    dims: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(set(self.dims)) != len(self.dims):
            raise PolyhedralError(f"duplicate dim names in space {self.name}: {self.dims}")

    @property
    def rank(self) -> int:
        return len(self.dims)

    def dim_index(self, dim: str) -> int:
        try:
            return self.dims.index(dim)
        except ValueError:
            raise PolyhedralError(f"space {self.name} has no dim {dim!r}") from None

    def renamed(self, prefix: str) -> "Space":
        """A copy with every dim name prefixed (for concatenation)."""
        return Space(self.name, tuple(prefix + d for d in self.dims))

    def concat(self, other: "Space", name: str | None = None) -> "Space":
        """Concatenate two spaces; dim names must stay unique."""
        return Space(name if name is not None else f"{self.name}*{other.name}",
                     self.dims + other.dims)

    def __iter__(self) -> Iterator[str]:
        return iter(self.dims)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.name}[{', '.join(self.dims)}]"


def anonymous(rank: int, stem: str = "s") -> Space:
    """An anonymous (schedule) space of the given rank."""
    return Space("", tuple(f"{stem}{i}" for i in range(rank)))
