"""Lexicographic order relations over schedule spaces, and ``ge_le``.

Schedule-space tuples impose a total order via lexicographic comparison
(Sec. IV-C).  ``ge_le`` is the second-order helper of Sec. IV-F that turns a
mapping from one tuple to another into the set of all tuples between them:

    ge_le : [[...] -> [...]] -> [...]
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import PolyhedralError
from repro.poly.imap import IMap, _canonical_space, _reindex
from repro.poly.iset import BasicSet, Constraint, ISet
from repro.poly.space import anonymous


def _lex_disjunct(
    total: int, off_a: int, off_b: int, n: int, j: int, strict_at_j: bool
) -> List[Constraint]:
    """Constraints for: a_i == b_i for i<j, and a_j < b_j (if strict_at_j)."""
    cons: List[Constraint] = []
    for i in range(j):
        vec = [0] * total
        vec[off_a + i] = 1
        vec[off_b + i] = -1
        cons.append((tuple(vec), 0, True))
    if strict_at_j:
        if j >= n:
            raise PolyhedralError("strict position out of range")
        vec = [0] * total
        vec[off_a + j] = -1
        vec[off_b + j] = 1
        cons.append((tuple(vec), -1, False))  # b_j - a_j - 1 >= 0
    return cons


def lex_le_disjuncts(total: int, off_a: int, off_b: int, n: int) -> List[List[Constraint]]:
    """All disjuncts of ``a lex<= b`` for rank-n tuples at given offsets."""
    out = [_lex_disjunct(total, off_a, off_b, n, j, True) for j in range(n)]
    out.append(_lex_disjunct(total, off_a, off_b, n, n, False))  # all equal
    return out


def lex_lt_disjuncts(total: int, off_a: int, off_b: int, n: int) -> List[List[Constraint]]:
    return [_lex_disjunct(total, off_a, off_b, n, j, True) for j in range(n)]


def lex_lt_map(n: int) -> IMap:
    """The relation ``{ x -> y : x lex< y }`` on rank-n tuples."""
    comb = _canonical_space(n, n)
    parts = [BasicSet(comb, cons) for cons in lex_lt_disjuncts(2 * n, 0, n, n)]
    sp = anonymous(n)
    return IMap(sp, sp, ISet(comb, parts))


def lex_le_map(n: int) -> IMap:
    """The relation ``{ x -> y : x lex<= y }`` on rank-n tuples."""
    comb = _canonical_space(n, n)
    parts = [BasicSet(comb, cons) for cons in lex_le_disjuncts(2 * n, 0, n, n)]
    sp = anonymous(n)
    return IMap(sp, sp, ISet(comb, parts))


def lex_compare(a: Sequence[int], b: Sequence[int]) -> int:
    """-1/0/+1 comparison of two equal-rank tuples (reference semantics)."""
    if len(a) != len(b):
        raise PolyhedralError("lex_compare rank mismatch")
    for x, y in zip(a, b):
        if x < y:
            return -1
        if x > y:
            return 1
    return 0


def ge_le(interval_map: IMap, n_sched: int) -> IMap:
    """Turn ``X -> [w -> r]`` (out rank 2*n_sched) into ``X -> {t : w <= t <= r}``.

    ``interval_map`` must have out rank ``2*n_sched`` where the first half is
    the (lexicographically) earlier tuple and the second half the later one.
    The result maps each X to every schedule tuple in the closed interval;
    the w/r tuples become existential columns, so the result is exact.
    """
    if interval_map.n_out != 2 * n_sched:
        raise PolyhedralError(
            f"ge_le expects out rank {2 * n_sched}, got {interval_map.n_out}"
        )
    nx = interval_map.n_in
    n = n_sched
    # wide layout: visible [x (nx), t (n)]; existential [w (n), r (n), part's]
    comb = _canonical_space(nx, n)
    t_off, w_off, r_off = nx, nx + n, nx + 2 * n
    out_parts: List[BasicSet] = []
    for p in interval_map.rel.parts:
        ep = p.n_exists
        width = nx + 3 * n + ep
        # part columns: x (nx), w (n), r (n), exist (ep)
        cmap = (
            list(range(nx))
            + list(range(w_off, w_off + n))
            + list(range(r_off, r_off + n))
            + list(range(nx + 3 * n, width))
        )
        base = _reindex(p, width, cmap)
        lo_disj = lex_le_disjuncts(width, w_off, t_off, n)  # w <= t
        hi_disj = lex_le_disjuncts(width, t_off, r_off, n)  # t <= r
        for lo in lo_disj:
            for hi in hi_disj:
                bs = BasicSet(comb, base + lo + hi, n_exists=2 * n + ep)
                if not bs.is_empty_rational():
                    out_parts.append(bs)
    return IMap(interval_map.in_space, anonymous(n), ISet(comb, out_parts))


def interval_tuples(
    w: Tuple[int, ...], r: Tuple[int, ...], domain: BasicSet
) -> List[Tuple[int, ...]]:
    """Reference implementation: all points of ``domain`` with w <= t <= r."""
    return [
        t
        for t in domain.points()
        if lex_compare(w, t) <= 0 and lex_compare(t, r) <= 0
    ]
