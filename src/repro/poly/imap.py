"""Binary integer relations (maps) between named spaces.

An :class:`IMap` is a finite union of basic relations ``{ x -> y : ... }``.
Internally every relation is an :class:`~repro.poly.iset.ISet` over a
canonical concatenated space with visible dims ``i0..i{n-1}, o0..o{m-1}``
(plus trailing existential columns), so composition/inversion are purely
positional; the user-facing in/out spaces keep their original names.

Composition and image are *exact* over the integers: intermediate dims are
kept as existential columns instead of being eliminated rationally.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import PolyhedralError
from repro.poly.aff import AffTuple
from repro.poly.iset import BasicSet, Constraint, ISet
from repro.poly.space import Space


def _canonical_space(n_in: int, n_out: int, name: str = "") -> Space:
    return Space(name, tuple(f"i{k}" for k in range(n_in)) + tuple(f"o{k}" for k in range(n_out)))


def _reindex(
    part: BasicSet,
    new_width: int,
    col_map: Sequence[int],
) -> List[Constraint]:
    """Re-index a part's constraint columns into a wider positional system.

    ``col_map[j]`` gives the destination column of the part's column ``j``
    (visible columns first, then its existential columns).
    """
    if len(col_map) != part.width:
        raise PolyhedralError("column map arity mismatch")
    out: List[Constraint] = []
    for coeffs, const, eq in part.constraints:
        vec = [0] * new_width
        for j, c in enumerate(coeffs):
            if c:
                vec[col_map[j]] = c
        out.append((tuple(vec), const, eq))
    return out


class IMap:
    """A union of basic relations from ``in_space`` to ``out_space``."""

    __slots__ = ("in_space", "out_space", "rel")

    def __init__(self, in_space: Space, out_space: Space, rel: ISet) -> None:
        if rel.space.rank != in_space.rank + out_space.rank:
            raise PolyhedralError("relation arity mismatch")
        self.in_space = in_space
        self.out_space = out_space
        self.rel = rel

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_aff(fn: AffTuple, domain: Optional[BasicSet | ISet] = None) -> "IMap":
        """The graph ``{ x -> f(x) : x in domain }`` of an affine function."""
        n_in, n_out = fn.domain.rank, fn.n_out
        comb = _canonical_space(n_in, n_out)
        base: List[Constraint] = []
        for j, e in enumerate(fn.exprs):
            vec_in = e.as_vector(fn.domain.dims)
            vec = list(vec_in) + [0] * n_out
            vec[n_in + j] = -1
            base.append((tuple(vec), e.const, True))
        parts: List[BasicSet] = []
        if domain is None:
            parts.append(BasicSet(comb, base))
        else:
            dom_parts = domain.parts if isinstance(domain, ISet) else (domain,)
            for dp in dom_parts:
                if dp.rank != n_in:
                    raise PolyhedralError("domain rank mismatch in from_aff")
                width = n_in + n_out + dp.n_exists
                cmap = list(range(n_in)) + list(range(n_in + n_out, width))
                cons = [(c[0] + (0,) * dp.n_exists, c[1], c[2]) for c in base]
                cons += _reindex(dp, width, cmap)
                parts.append(BasicSet(comb, cons, dp.n_exists))
        tgt = (
            fn.target
            if fn.target.rank == n_out
            else Space(fn.target.name, tuple(f"d{k}" for k in range(n_out)))
        )
        return IMap(fn.domain, tgt, ISet(comb, parts))

    @staticmethod
    def identity(space: Space) -> "IMap":
        return IMap.from_aff(AffTuple.identity(space))

    @staticmethod
    def empty(in_space: Space, out_space: Space) -> "IMap":
        return IMap(
            in_space,
            out_space,
            ISet.empty(_canonical_space(in_space.rank, out_space.rank)),
        )

    @staticmethod
    def from_constraint_parts(
        in_space: Space, out_space: Space, parts: Sequence[BasicSet]
    ) -> "IMap":
        comb = _canonical_space(in_space.rank, out_space.rank)
        fixed = [p.with_space(comb) for p in parts]
        return IMap(in_space, out_space, ISet(comb, fixed))

    # -- shape -----------------------------------------------------------
    @property
    def n_in(self) -> int:
        return self.in_space.rank

    @property
    def n_out(self) -> int:
        return self.out_space.rank

    def is_empty(self, exact: bool = True) -> bool:
        return self.rel.is_empty(exact=exact)

    # -- core algebra -------------------------------------------------------
    def inverse(self) -> "IMap":
        ni, no = self.n_in, self.n_out
        comb = _canonical_space(no, ni)
        parts = []
        for p in self.rel.parts:
            cmap = list(range(no, no + ni)) + list(range(no)) + list(
                range(ni + no, p.width)
            )
            parts.append(BasicSet(comb, _reindex(p, p.width, cmap), p.n_exists))
        return IMap(self.out_space, self.in_space, ISet(comb, parts))

    def compose(self, other: "IMap") -> "IMap":
        """``self ∘ other``: apply ``other`` first (other: A->B, self: B->C).

        Exact: the intermediate B dims become existential columns.
        """
        if other.n_out != self.n_in:
            raise PolyhedralError(
                f"compose: {other.out_space} (rank {other.n_out}) does not feed "
                f"{self.in_space} (rank {self.n_in})"
            )
        na, nb, nc = other.n_in, self.n_in, self.n_out
        comb = _canonical_space(na, nc)
        out_parts: List[BasicSet] = []
        for p1 in other.rel.parts:  # (A, B) + e1
            for p2 in self.rel.parts:  # (B, C) + e2
                e1, e2 = p1.n_exists, p2.n_exists
                width = na + nc + nb + e1 + e2
                cmap1 = (
                    list(range(na))
                    + list(range(na + nc, na + nc + nb))
                    + list(range(na + nc + nb, na + nc + nb + e1))
                )
                cmap2 = (
                    list(range(na + nc, na + nc + nb))
                    + list(range(na, na + nc))
                    + list(range(na + nc + nb + e1, width))
                )
                cons = _reindex(p1, width, cmap1) + _reindex(p2, width, cmap2)
                out_parts.append(BasicSet(comb, cons, nb + e1 + e2))
        return IMap(other.in_space, self.out_space, ISet(comb, out_parts))

    def apply(self, s: BasicSet | ISet) -> ISet:
        """Exact image of a set under the relation."""
        parts_in = s.parts if isinstance(s, ISet) else (s,)
        ni, no = self.n_in, self.n_out
        out_space = Space(self.out_space.name, tuple(f"o{k}" for k in range(no)))
        out_parts: List[BasicSet] = []
        for sp in parts_in:
            if sp.rank != ni:
                raise PolyhedralError("apply: set rank mismatch")
            for p in self.rel.parts:
                ep, es = p.n_exists, sp.n_exists
                width = no + ni + ep + es
                cmap_p = (
                    list(range(no, no + ni))
                    + list(range(no))
                    + list(range(no + ni, no + ni + ep))
                )
                cmap_s = list(range(no, no + ni)) + list(range(no + ni + ep, width))
                cons = _reindex(p, width, cmap_p) + _reindex(sp, width, cmap_s)
                out_parts.append(BasicSet(out_space, cons, ni + ep + es))
        return ISet(out_space, out_parts)

    def domain(self) -> ISet:
        ni, no = self.n_in, self.n_out
        space = Space(self.in_space.name, tuple(f"i{k}" for k in range(ni)))
        parts = [
            BasicSet(
                space,
                _reindex(
                    p,
                    p.width,
                    list(range(ni)) + list(range(ni, ni + no)) + list(range(ni + no, p.width)),
                ),
                no + p.n_exists,
            )
            for p in self.rel.parts
        ]
        return ISet(space, parts)

    def range(self) -> ISet:
        ni, no = self.n_in, self.n_out
        space = Space(self.out_space.name, tuple(f"o{k}" for k in range(no)))
        parts = []
        for p in self.rel.parts:
            cmap = (
                list(range(no, no + ni))
                + list(range(no))
                + list(range(no + ni, p.width))
            )
            parts.append(BasicSet(space, _reindex(p, p.width, cmap), ni + p.n_exists))
        return ISet(space, parts)

    def intersect_domain(self, s: BasicSet | ISet) -> "IMap":
        parts_in = s.parts if isinstance(s, ISet) else (s,)
        ni, no = self.n_in, self.n_out
        comb = _canonical_space(ni, no)
        out_parts = []
        for p in self.rel.parts:
            for sp in parts_in:
                if sp.rank != ni:
                    raise PolyhedralError("intersect_domain: rank mismatch")
                width = ni + no + p.n_exists + sp.n_exists
                cmap_p = list(range(ni + no + p.n_exists))
                cmap_s = list(range(ni)) + list(range(ni + no + p.n_exists, width))
                cons = _reindex(p, width, cmap_p) + _reindex(sp, width, cmap_s)
                out_parts.append(BasicSet(comb, cons, p.n_exists + sp.n_exists))
        return IMap(self.in_space, self.out_space, ISet(comb, out_parts))

    def intersect_range(self, s: BasicSet | ISet) -> "IMap":
        parts_in = s.parts if isinstance(s, ISet) else (s,)
        ni, no = self.n_in, self.n_out
        comb = _canonical_space(ni, no)
        out_parts = []
        for p in self.rel.parts:
            for sp in parts_in:
                if sp.rank != no:
                    raise PolyhedralError("intersect_range: rank mismatch")
                width = ni + no + p.n_exists + sp.n_exists
                cmap_p = list(range(ni + no + p.n_exists))
                cmap_s = list(range(ni, ni + no)) + list(range(ni + no + p.n_exists, width))
                cons = _reindex(p, width, cmap_p) + _reindex(sp, width, cmap_s)
                out_parts.append(BasicSet(comb, cons, p.n_exists + sp.n_exists))
        return IMap(self.in_space, self.out_space, ISet(comb, out_parts))

    def intersect(self, other: "IMap") -> "IMap":
        if (self.n_in, self.n_out) != (other.n_in, other.n_out):
            raise PolyhedralError("intersect: arity mismatch")
        return IMap(self.in_space, self.out_space, self.rel.intersect(other.rel))

    def union(self, other: "IMap") -> "IMap":
        if (self.n_in, self.n_out) != (other.n_in, other.n_out):
            raise PolyhedralError("union: arity mismatch")
        return IMap(self.in_space, self.out_space, self.rel.union(other.rel))

    def product(self, other: "IMap") -> "IMap":
        """Cross product: (A->B) x (C->D) = (A×C) -> (B×D)."""
        na, nb = self.n_in, self.n_out
        nc, nd = other.n_in, other.n_out
        comb = _canonical_space(na + nc, nb + nd)
        out_parts: List[BasicSet] = []
        for p1 in self.rel.parts:
            for p2 in other.rel.parts:
                e1, e2 = p1.n_exists, p2.n_exists
                width = na + nc + nb + nd + e1 + e2
                cmap1 = (
                    list(range(na))
                    + list(range(na + nc, na + nc + nb))
                    + list(range(na + nc + nb + nd, na + nc + nb + nd + e1))
                )
                cmap2 = (
                    list(range(na, na + nc))
                    + list(range(na + nc + nb, na + nc + nb + nd))
                    + list(range(na + nc + nb + nd + e1, width))
                )
                cons = _reindex(p1, width, cmap1) + _reindex(p2, width, cmap2)
                out_parts.append(BasicSet(comb, cons, e1 + e2))
        in_sp = self.in_space.renamed("a_").concat(other.in_space.renamed("b_"), name="")
        out_sp = self.out_space.renamed("a_").concat(other.out_space.renamed("b_"), name="")
        return IMap(in_sp, out_sp, ISet(comb, out_parts))

    # -- queries -------------------------------------------------------------
    def contains(self, x: Sequence[int], y: Sequence[int]) -> bool:
        return self.rel.contains(tuple(x) + tuple(y))

    def pairs(self, limit: int = 1_000_000) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        for pt in self.rel.points(limit=limit):
            yield pt[: self.n_in], pt[self.n_in :]

    def image_of_point(self, x: Sequence[int], limit: int = 200_000) -> List[Tuple[int, ...]]:
        """All y with (x, y) in the relation (requires bounded out dims)."""
        out = set()
        for p in self.rel.parts:
            sub = p
            for v in x:
                sub = sub.fix_dim(sub.space.dims[0], int(v))
            for pt in sub.points(limit=limit):
                out.add(pt)
        return sorted(out)

    def __repr__(self) -> str:  # pragma: no cover
        return f"IMap({self.in_space} -> {self.out_space}, {len(self.rel.parts)} parts)"
