"""Integer affine expressions and multi-dimensional affine functions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import PolyhedralError
from repro.poly.space import Space


@dataclass(frozen=True)
class AffExpr:
    """An integer affine expression ``sum(coeffs[d] * d) + const``.

    Coefficients are keyed by dimension *name*; the expression is only
    meaningful relative to a space that defines those names.
    """

    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    # -- construction ------------------------------------------------------
    @staticmethod
    def var(name: str, coeff: int = 1) -> "AffExpr":
        return AffExpr(((name, int(coeff)),), 0) if coeff else AffExpr((), 0)

    @staticmethod
    def constant(value: int) -> "AffExpr":
        return AffExpr((), int(value))

    @staticmethod
    def from_dict(coeffs: Mapping[str, int], const: int = 0) -> "AffExpr":
        items = tuple(sorted((d, int(c)) for d, c in coeffs.items() if int(c) != 0))
        return AffExpr(items, int(const))

    # -- views -------------------------------------------------------------
    def coeff_dict(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def coeff(self, dim: str) -> int:
        return dict(self.coeffs).get(dim, 0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def used_dims(self) -> Tuple[str, ...]:
        return tuple(d for d, _ in self.coeffs)

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: "AffExpr | int") -> "AffExpr":
        if isinstance(other, int):
            return AffExpr(self.coeffs, self.const + other)
        merged = dict(self.coeffs)
        for d, c in other.coeffs:
            merged[d] = merged.get(d, 0) + c
        return AffExpr.from_dict(merged, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "AffExpr":
        return AffExpr(tuple((d, -c) for d, c in self.coeffs), -self.const)

    def __sub__(self, other: "AffExpr | int") -> "AffExpr":
        if isinstance(other, int):
            return self + (-other)
        return self + (-other)

    def __mul__(self, k: int) -> "AffExpr":
        if not isinstance(k, int):
            raise PolyhedralError("affine expressions only scale by integers")
        if k == 0:
            return AffExpr((), 0)
        return AffExpr(tuple((d, c * k) for d, c in self.coeffs), self.const * k)

    __rmul__ = __mul__

    # -- evaluation / substitution -------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.const + sum(c * env[d] for d, c in self.coeffs)

    def substitute(self, bindings: Mapping[str, "AffExpr"]) -> "AffExpr":
        """Replace dims with affine expressions (e.g. layout application)."""
        out = AffExpr.constant(self.const)
        for d, c in self.coeffs:
            repl = bindings.get(d)
            out = out + (repl * c if repl is not None else AffExpr.var(d, c))
        return out

    def rename(self, mapping: Mapping[str, str]) -> "AffExpr":
        return AffExpr(
            tuple(sorted((mapping.get(d, d), c) for d, c in self.coeffs)), self.const
        )

    def as_vector(self, dims: Sequence[str]) -> Tuple[int, ...]:
        """Coefficient vector aligned to ``dims`` (no constant term)."""
        cd = dict(self.coeffs)
        missing = set(cd) - set(dims)
        if missing:
            raise PolyhedralError(f"expression uses dims {missing} not in {dims}")
        return tuple(cd.get(d, 0) for d in dims)

    def __str__(self) -> str:
        parts = []
        for d, c in self.coeffs:
            if c == 1:
                parts.append(d)
            elif c == -1:
                parts.append(f"-{d}")
            else:
                parts.append(f"{c}*{d}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


@dataclass(frozen=True)
class AffTuple:
    """A multi-dimensional affine function: one :class:`AffExpr` per output dim.

    Models e.g. a memory layout ``t[i,j,k] -> t[121i + 11j + k]`` or a
    schedule ``stmt[i,j] -> [0, i, j, 0]``.
    """

    domain: Space
    exprs: Tuple[AffExpr, ...]
    target: Space = field(default=Space(""))

    def __post_init__(self) -> None:
        if self.target.rank and self.target.rank != len(self.exprs):
            raise PolyhedralError(
                f"target space rank {self.target.rank} != {len(self.exprs)} exprs"
            )
        dom = set(self.domain.dims)
        for e in self.exprs:
            bad = set(e.used_dims()) - dom
            if bad:
                raise PolyhedralError(f"expression {e} uses unknown dims {bad}")

    @property
    def n_out(self) -> int:
        return len(self.exprs)

    @staticmethod
    def identity(space: Space) -> "AffTuple":
        return AffTuple(space, tuple(AffExpr.var(d) for d in space.dims), space)

    def evaluate(self, point: Sequence[int]) -> Tuple[int, ...]:
        env = dict(zip(self.domain.dims, point))
        if len(point) != self.domain.rank:
            raise PolyhedralError("point rank mismatch")
        return tuple(e.evaluate(env) for e in self.exprs)

    def compose(self, inner: "AffTuple") -> "AffTuple":
        """self ∘ inner : first apply ``inner``, then ``self``."""
        if inner.n_out != self.domain.rank:
            raise PolyhedralError(
                f"cannot compose: inner produces {inner.n_out} dims, "
                f"outer domain has rank {self.domain.rank}"
            )
        bindings = dict(zip(self.domain.dims, inner.exprs))
        return AffTuple(
            inner.domain,
            tuple(e.substitute(bindings) for e in self.exprs),
            self.target,
        )

    def concat_outputs(self, other: "AffTuple") -> "AffTuple":
        """Pair two functions over the same domain: x -> (f(x), g(x))."""
        if other.domain.dims != self.domain.dims:
            raise PolyhedralError("concat_outputs requires identical domains")
        return AffTuple(self.domain, self.exprs + other.exprs,
                        self.target.concat(other.target))

    def __str__(self) -> str:
        ins = ", ".join(self.domain.dims)
        outs = ", ".join(str(e) for e in self.exprs)
        return f"{{ {self.domain.name}[{ins}] -> {self.target.name}[{outs}] }}"
