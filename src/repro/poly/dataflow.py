"""Layout-aware dataflow analysis: RAW/RAR dependences (Sec. IV-E/IV-F).

Two granularities:

* **Statement-level** dependences drive rescheduling legality and cost
  (each tensor is written by exactly one statement in SSA form, so RAW
  edges are simply writer -> readers).
* **Element-level** RAW relations feed liveness analysis:

      RAW : array[i] -> [write[...] -> read[...]]

  mapping array elements to (write instance, read instance) pairs, built
  exactly (existential columns) and restricted to ``sched(w) lex<= sched(r)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PolyhedralError
from repro.poly.aff import AffExpr, AffTuple
from repro.poly.imap import IMap, _canonical_space
from repro.poly.iset import BasicSet, ISet
from repro.poly.lexorder import lex_le_disjuncts
from repro.poly.schedule import PolyProgram, PolyStatement
from repro.poly.space import Space


@dataclass(frozen=True)
class StatementDep:
    """A statement-level dependence edge ``producer -> consumer`` on a tensor."""

    kind: str  # 'raw' or 'rar'
    producer: str
    consumer: str
    tensor: str

    def __str__(self) -> str:
        return f"{self.kind.upper()} {self.producer} -> {self.consumer} on {self.tensor}"


def statement_raw_deps(prog: PolyProgram) -> List[StatementDep]:
    """RAW edges writer->reader for every tensor (SSA: one writer each)."""
    out: List[StatementDep] = []
    for tensor in {s.write.tensor for s in prog.statements}:
        writers = prog.writers_of(tensor)
        if len(writers) != 1:
            raise PolyhedralError(f"tensor {tensor!r} has {len(writers)} writers (not SSA)")
        w = writers[0]
        for r in prog.readers_of(tensor):
            if r.name != w.name:
                out.append(StatementDep("raw", w.name, r.name, tensor))
    return sorted(out, key=lambda d: (d.producer, d.consumer, d.tensor))


def statement_rar_pairs(prog: PolyProgram) -> List[StatementDep]:
    """RAR pairs: distinct statements reading the same tensor (cost input)."""
    out: List[StatementDep] = []
    tensors = {t for s in prog.statements for t in s.operand_tensors()}
    for tensor in sorted(tensors):
        readers = prog.readers_of(tensor)
        for i, a in enumerate(readers):
            for b in readers[i + 1 :]:
                out.append(StatementDep("rar", a.name, b.name, tensor))
    return out


def check_schedule_legal(prog: PolyProgram) -> None:
    """Every RAW producer must be scheduled at an earlier stage.

    (Statements never interleave across stages in our schedules, so stage
    ordering is sufficient; intra-statement reduction self-dependences are
    always respected by the in-order loop execution.)
    """
    for dep in statement_raw_deps(prog):
        pw = prog.stage_of(prog.statement(dep.producer))
        pr = prog.stage_of(prog.statement(dep.consumer))
        if pw >= pr:
            raise PolyhedralError(
                f"illegal schedule: {dep} requires stage({dep.producer}) < stage({dep.consumer})"
            )


def _access_to_sched(
    prog: PolyProgram, stmt: PolyStatement, access_fn: AffTuple
) -> IMap:
    """Relation tensor-element -> schedule tuples of the accessing instances."""
    graph = IMap.from_aff(access_fn, stmt.domain)      # inst -> element
    sched = IMap.from_aff(prog.schedules[stmt.name], stmt.domain)  # inst -> sched
    return sched.compose(graph.inverse())              # element -> sched


def raw_element_relation(prog: PolyProgram, tensor: str) -> Optional[IMap]:
    """The paper's ``RAW : array[i] -> [write[...] -> read[...]]`` for one
    tensor, with schedules applied: out dims are (sched_w, sched_r) pairs
    restricted to ``sched_w lex<= sched_r``.  Returns None if the tensor is
    never both written and read inside the kernel.
    """
    writers = prog.writers_of(tensor)
    readers = prog.readers_of(tensor)
    if not writers or not readers:
        return None
    rank = prog.sched_rank
    decl = prog.function.decls[tensor]
    elem_dims = tuple(f"d{j}" for j in range(len(decl.shape)))
    elem_space = Space(tensor, elem_dims)
    ident_exprs = tuple(AffExpr.var(d) for d in elem_dims)
    diag = IMap.from_aff(
        AffTuple(
            elem_space,
            ident_exprs + ident_exprs,
            Space(tensor, tuple(f"a{j}" for j in range(2 * len(elem_dims)))),
        ),
        BasicSet.from_shape(elem_space, decl.shape),
    )
    result: Optional[IMap] = None
    lex_space = _canonical_space(len(elem_dims), 2 * rank)
    lex_total = len(elem_dims) + 2 * rank
    lex_parts = [
        BasicSet(lex_space, cons)
        for cons in lex_le_disjuncts(lex_total, len(elem_dims), len(elem_dims) + rank, rank)
    ]
    lex_guard = ISet(lex_space, lex_parts)
    for w in writers:
        wmap = _access_to_sched(prog, w, w.write.fn)
        for r in readers:
            for acc in r.reads:
                if acc.tensor != tensor:
                    continue
                rmap = _access_to_sched(prog, r, acc.fn)
                pair = wmap.product(rmap).compose(diag)  # elem -> (sw, sr)
                pair = IMap(
                    pair.in_space,
                    pair.out_space,
                    pair.rel.intersect(lex_guard),
                )
                result = pair if result is None else result.union(pair)
    return result


def access_schedule_points(
    prog: PolyProgram, tensor: str, mode: str
) -> Optional[ISet]:
    """Union of schedule tuples at which ``tensor`` is read ('r') / written
    ('w') — the port-access schedule used for memory-interface compatibility.
    """
    parts: Optional[ISet] = None
    if mode == "w":
        stmts = [(s, s.write.fn) for s in prog.writers_of(tensor)]
    elif mode == "r":
        stmts = [
            (s, acc.fn)
            for s in prog.readers_of(tensor)
            for acc in s.reads
            if acc.tensor == tensor
        ]
    else:
        raise PolyhedralError(f"mode must be 'r' or 'w', got {mode!r}")
    for s, _fn in stmts:
        sched = IMap.from_aff(prog.schedules[s.name], s.domain)
        img = sched.range()
        parts = img if parts is None else parts.union(img)
    return parts


def dependence_distance_stages(prog: PolyProgram, dep: StatementDep) -> int:
    """Stage distance of a statement-level dependence (live-interval proxy)."""
    return prog.stage_of(prog.statement(dep.consumer)) - prog.stage_of(
        prog.statement(dep.producer)
    )
