"""A self-contained polyhedral engine (mini-isl).

The paper builds its compiler on libISL.  This package implements the slice
of isl functionality the flow actually uses, over *bounded integer spaces
without symbolic parameters* (tensor shapes are static in CFDlang):

- :mod:`repro.poly.space`  — named tuple spaces,
- :mod:`repro.poly.aff`    — affine expressions and multi-dim affine functions,
- :mod:`repro.poly.iset`   — integer sets (unions of basic sets) with
  Fourier–Motzkin projection, emptiness tests and point enumeration,
- :mod:`repro.poly.imap`   — binary relations (maps) with composition,
  inversion, application,
- :mod:`repro.poly.lexorder` — lexicographic order relations and the
  ``ge_le`` helper of Sec. IV-F,
- :mod:`repro.poly.schedule`  — statements, schedules, reference schedule,
- :mod:`repro.poly.dataflow`  — RAW/RAR dependence analysis,
- :mod:`repro.poly.reschedule` — dependence-driven rescheduling (Pluto-lite),
- :mod:`repro.poly.codegen_ast` — schedule to loop-AST generation.
"""

from repro.poly.space import Space
from repro.poly.aff import AffExpr, AffTuple
from repro.poly.iset import BasicSet, ISet
from repro.poly.imap import IMap
from repro.poly.lexorder import lex_lt_map, lex_le_map, ge_le

__all__ = [
    "Space",
    "AffExpr",
    "AffTuple",
    "BasicSet",
    "ISet",
    "IMap",
    "lex_lt_map",
    "lex_le_map",
    "ge_le",
]
