"""BRAM primitive models for Xilinx UltraScale+ (xczu7ev: 312 BRAM36).

Geometry (UltraScale+ block RAM, 36 Kb per BRAM36 tile):

* **SDP 512x72** — simple dual port: one write port + one read port, up to
  72 bits wide.  A 64-bit word fits one tile; capacity 512 words/tile.
* **TDP 1024x36** — true dual port: two independent read/write ports, but
  at most 36 bits per port, so a 64-bit word spans 2 tiles side by side;
  capacity 1024 words per 2-tile column pair.

Port-class policy (calibrated against the paper's reported PLM sizes — 31
BRAMs/kernel unshared, 18 shared, Sec. VI):

* Arrays **streamed per element** through the system interconnect (D, u, v
  in the Inverse Helmholtz) get TDP geometry: one port serves the
  accelerator, the second the integration logic, which drains/fills PLMs
  for batched rounds (Fig. 7c).
* **Static operands** (e.g. S, transferred once for all elements) and
  kernel temporaries need only the accelerator's 1R+1W: SDP geometry.

HLS-internal arrays (the temporaries-inside ablation) follow Vivado's
defaults: small arrays (<= 128 words) map to distributed LUTRAM; larger
ones to dual-port RAM (TDP geometry).
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.errors import MemoryArchitectureError
from repro.utils import ceil_div

BRAM36_BITS = 36 * 1024
SDP_DEPTH = 512     # words of 64 bit per tile in 512x72 mode
TDP_DEPTH = 1024    # words per 2-tile column pair in 1024x36 mode
TDP_COLUMNS = 2     # 64-bit word spans two 36-bit tiles
LUTRAM_MAX_WORDS = 128
WORD_BITS = 64


class PortClass(enum.Enum):
    """Who needs concurrent access to the PLM unit."""

    ACCELERATOR_ONLY = "single"      # 1R + 1W from the kernel: SDP
    ACCELERATOR_AND_SYSTEM = "dual"  # + interconnect port: TDP


def brams_for_unit(words: int, port_class: PortClass, banks: int = 1) -> int:
    """BRAM36 tiles for one PLM unit of ``words`` 64-bit elements.

    ``banks > 1`` builds a cyclic multi-bank unit (requested by HLS array
    partitioning for unrolled kernels): each bank holds ``ceil(words /
    banks)`` words in its own tiles, so the unit sustains ``banks``
    concurrent accesses per port class at a possible rounding cost.
    """
    if words <= 0:
        raise MemoryArchitectureError(f"PLM unit needs positive size, got {words}")
    if banks < 1:
        raise MemoryArchitectureError(f"PLM unit needs >= 1 bank, got {banks}")
    per_bank = ceil_div(words, banks)
    if port_class is PortClass.ACCELERATOR_ONLY:
        return banks * ceil_div(per_bank, SDP_DEPTH)
    return banks * TDP_COLUMNS * ceil_div(per_bank, TDP_DEPTH)


def hls_internal_is_lutram(words: int) -> bool:
    """Vivado HLS maps small internal arrays to distributed LUTRAM."""
    return words <= LUTRAM_MAX_WORDS


def hls_internal_brams(words: int) -> int:
    """BRAM36 tiles Vivado HLS spends on one internal array (RAM_2P)."""
    if hls_internal_is_lutram(words):
        return 0
    return TDP_COLUMNS * ceil_div(words, TDP_DEPTH)


def hls_internal_lutram_luts(words: int) -> int:
    """LUT cost of a LUTRAM-mapped internal array (64-bit words; an
    UltraScale+ LUT6 provides 64 bits of distributed RAM)."""
    if not hls_internal_is_lutram(words):
        return 0
    return words * WORD_BITS // 64 * 2  # RAM64X1D uses 2 LUTs per 64x1 bit


def total_brams(counts: Iterable[int]) -> int:
    return sum(counts)
