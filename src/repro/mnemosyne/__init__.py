"""Mnemosyne: memory subsystem generation (Pilato et al., TCAD'17).

Mnemosyne "takes over the generation of the memory architecture for the
accelerator and supports the effective use of FPGA BRAMs": it implements
each exported array with a PLM (private local memory) unit, creates
zero-conflict multi-bank/multi-port architectures with fixed access
latency, and applies **memory sharing** driven by the compiler's
compatibility metadata.

Modules:

* :mod:`repro.mnemosyne.bram`    — BRAM primitive geometry and counting,
* :mod:`repro.mnemosyne.plm`     — PLM units (banks, ports, controllers),
* :mod:`repro.mnemosyne.sharing` — sharing optimizer (pairwise matching, as
  the paper's tool; clique cover as a more aggressive ablation),
* :mod:`repro.mnemosyne.config`  — the metadata interface with the compiler
  (step iv of Fig. 4), JSON-serializable,
* :mod:`repro.mnemosyne.hbm`     — HBM pseudo-channel modeling and tensor ->
  bank assignment (the Soldavini et al. 2022 sequel flow).
"""

from repro.mnemosyne.bram import (
    BRAM36_BITS,
    PortClass,
    brams_for_unit,
    hls_internal_brams,
    hls_internal_is_lutram,
)
from repro.mnemosyne.plm import PLMUnit, MemorySubsystem
from repro.mnemosyne.sharing import build_memory_subsystem, SharingMode
from repro.mnemosyne.config import MnemosyneConfig, port_class_assignment
from repro.mnemosyne.hbm import (
    BankingReport,
    ChannelAssignment,
    HbmSpillError,
    TensorDemand,
    assign_banks,
)

__all__ = [
    "BRAM36_BITS",
    "PortClass",
    "brams_for_unit",
    "hls_internal_brams",
    "hls_internal_is_lutram",
    "PLMUnit",
    "MemorySubsystem",
    "build_memory_subsystem",
    "SharingMode",
    "MnemosyneConfig",
    "port_class_assignment",
    "BankingReport",
    "ChannelAssignment",
    "HbmSpillError",
    "TensorDemand",
    "assign_banks",
]
