"""Memory-sharing optimization over the compatibility graph.

Three modes:

* ``NONE``     — one PLM unit per array (the paper's baseline: 31 BRAMs per
  Inverse Helmholtz kernel).
* ``MATCHING`` — pairwise merges chosen by maximum-weight matching on the
  address-space compatibility graph, weights = BRAM savings.  This mirrors
  the pairwise-merge behaviour of the Mnemosyne release used in the paper
  and reproduces its 18 BRAMs per kernel.
* ``CLIQUE``   — greedy clique cover: any number of mutually compatible
  arrays overlay one unit.  More aggressive than the paper's tool (13
  BRAMs for the Helmholtz kernel); reported as an ablation.

Merged units take the strongest port class of their members and the
capacity of the largest member (all members overlay at offset 0; liveness
disjointness makes this legal — Sec. V-A2).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import MemoryArchitectureError
from repro.mnemosyne.bram import PortClass, brams_for_unit
from repro.mnemosyne.config import MnemosyneConfig
from repro.mnemosyne.plm import MemorySubsystem, PLMUnit


class SharingMode(enum.Enum):
    NONE = "none"
    MATCHING = "matching"
    CLIQUE = "clique"


def _merged_port_class(config: MnemosyneConfig, members: Tuple[str, ...]) -> PortClass:
    if any(
        config.port_classes[m] is PortClass.ACCELERATOR_AND_SYSTEM for m in members
    ):
        return PortClass.ACCELERATOR_AND_SYSTEM
    return PortClass.ACCELERATOR_ONLY


def _unit_for(config: MnemosyneConfig, members: Tuple[str, ...], idx: int) -> PLMUnit:
    words = max(config.sizes[m] for m in members)
    banks = max(config.banks_of(m) for m in members)
    return PLMUnit(
        f"plm{idx}", tuple(members), words, _merged_port_class(config, members), banks
    )


def _merge_saving(config: MnemosyneConfig, a: str, b: str) -> int:
    """BRAM tiles saved by overlaying two arrays in one unit."""
    alone = brams_for_unit(
        config.sizes[a], config.port_classes[a], config.banks_of(a)
    ) + brams_for_unit(config.sizes[b], config.port_classes[b], config.banks_of(b))
    merged_words = max(config.sizes[a], config.sizes[b])
    merged_banks = max(config.banks_of(a), config.banks_of(b))
    merged = brams_for_unit(
        merged_words, _merged_port_class(config, (a, b)), merged_banks
    )
    return alone - merged


def _share_matching(config: MnemosyneConfig) -> List[Tuple[str, ...]]:
    g = nx.Graph()
    g.add_nodes_from(config.arrays)
    for e in config.address_space_edges:
        a, b = sorted(e)
        w = _merge_saving(config, a, b)
        if w > 0:
            g.add_edge(a, b, weight=w)
    matching = nx.max_weight_matching(g, maxcardinality=False)
    paired = {}
    for a, b in matching:
        paired[a] = b
        paired[b] = a
    groups: List[Tuple[str, ...]] = []
    done = set()
    for a in config.arrays:
        if a in done:
            continue
        if a in paired:
            b = paired[a]
            groups.append(tuple(sorted((a, b))))
            done.update((a, b))
        else:
            groups.append((a,))
            done.add(a)
    return groups


_EXACT_CLIQUE_LIMIT = 14  # subset-DP beyond this is too slow; greedy fallback


def _share_clique(config: MnemosyneConfig) -> List[Tuple[str, ...]]:
    """Minimum-BRAM clique cover.

    Exact for up to ``_EXACT_CLIQUE_LIMIT`` arrays via subset dynamic
    programming (``best[mask] = min over clique submasks containing the
    lowest bit``); greedy first-fit (largest arrays first) beyond that.
    """
    arrays = sorted(config.arrays)
    n = len(arrays)
    idx = {a: i for i, a in enumerate(arrays)}
    adj = [0] * n
    for e in config.address_space_edges:
        a, b = tuple(e)
        if a in idx and b in idx:
            adj[idx[a]] |= 1 << idx[b]
            adj[idx[b]] |= 1 << idx[a]

    def group_cost(mask: int) -> int:
        members = tuple(arrays[i] for i in range(n) if mask & (1 << i))
        words = max(config.sizes[m] for m in members)
        banks = max(config.banks_of(m) for m in members)
        return brams_for_unit(words, _merged_port_class(config, members), banks)

    def is_clique_simple(mask: int) -> bool:
        bits = [i for i in range(n) if mask & (1 << i)]
        for x in range(len(bits)):
            for y in range(x + 1, len(bits)):
                if not (adj[bits[x]] >> bits[y]) & 1:
                    return False
        return True

    if n <= _EXACT_CLIQUE_LIMIT:
        full = (1 << n) - 1
        INF = float("inf")
        best = [INF] * (full + 1)
        choice = [0] * (full + 1)
        best[0] = 0
        for mask in range(1, full + 1):
            low = mask & -mask
            sub = mask
            while sub:
                if sub & low and is_clique_simple(sub):
                    c = group_cost(sub) + best[mask ^ sub]
                    if c < best[mask]:
                        best[mask] = c
                        choice[mask] = sub
                sub = (sub - 1) & mask
        groups: List[Tuple[str, ...]] = []
        mask = full
        while mask:
            sub = choice[mask]
            groups.append(tuple(arrays[i] for i in range(n) if sub & (1 << i)))
            mask ^= sub
        return sorted(groups)

    # greedy fallback: largest arrays first, extend to a maximal clique
    order = sorted(config.arrays, key=lambda a: (-config.sizes[a], a))
    groups = []
    used: set = set()
    for a in order:
        if a in used:
            continue
        group = [a]
        used.add(a)
        for b in order:
            if b in used:
                continue
            if all((adj[idx[b]] >> idx[m]) & 1 for m in group):
                group.append(b)
                used.add(b)
        groups.append(tuple(sorted(group)))
    return sorted(groups)


def validate_groups(config: MnemosyneConfig, groups: List[Tuple[str, ...]]) -> None:
    """Legality: every pair inside a group must be address-space compatible."""
    for group in groups:
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                if not config.compatible(a, b):
                    raise MemoryArchitectureError(
                        f"illegal sharing: {a!r} and {b!r} are not address-space compatible"
                    )


def build_memory_subsystem(
    config: MnemosyneConfig,
    mode: SharingMode = SharingMode.MATCHING,
    groups: List[Tuple[str, ...]] | None = None,
) -> MemorySubsystem:
    """Build the per-kernel memory subsystem under the given sharing mode.

    ``groups`` overrides the optimizer with an explicit grouping (still
    legality-checked) — used for what-if exploration.
    """
    if groups is None:
        if mode is SharingMode.NONE:
            groups = [(a,) for a in config.arrays]
        elif mode is SharingMode.MATCHING:
            groups = _share_matching(config)
        elif mode is SharingMode.CLIQUE:
            groups = _share_clique(config)
        else:  # pragma: no cover
            raise MemoryArchitectureError(f"unknown sharing mode {mode}")
    validate_groups(config, groups)
    subsystem = MemorySubsystem(
        [_unit_for(config, g, i) for i, g in enumerate(groups)]
    )
    return subsystem.validate()


def sharing_report(config: MnemosyneConfig) -> Dict[str, int]:
    """BRAM totals per sharing mode (for Fig. 8-style summaries)."""
    return {
        mode.value: build_memory_subsystem(config, mode).brams
        for mode in SharingMode
    }
