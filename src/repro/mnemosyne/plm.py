"""PLM units and the per-kernel memory subsystem."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import MemoryArchitectureError
from repro.mnemosyne.bram import PortClass, brams_for_unit

# Controller logic per PLM unit (address decode + write-enable fan-out).
# Small by design: Table I shows near-identical logic for the sharing and
# no-sharing architectures (e.g. 11,318 vs 11,292 LUTs at m=1) even though
# the unit count differs, so per-unit logic must be marginal.
PLM_CTRL_LUT_PER_UNIT = 6
PLM_CTRL_FF_PER_UNIT = 4
PLM_CTRL_LUT_PER_MEMBER = 2   # member select (sharing muxes addresses)


@dataclass(frozen=True)
class PLMUnit:
    """One private local memory unit: a set of arrays overlaid on shared
    storage (singleton when no sharing applies).

    ``banks > 1`` builds a cyclic multi-bank unit so an unrolled kernel can
    issue that many concurrent accesses ("multi-port, multi-bank
    architectures based on the requested HLS optimizations", Sec. V-A2).
    """

    name: str
    members: Tuple[str, ...]
    words: int                   # capacity: max member size (offset-0 overlay)
    port_class: PortClass
    banks: int = 1

    @property
    def brams(self) -> int:
        return brams_for_unit(self.words, self.port_class, self.banks)

    @property
    def ctrl_luts(self) -> int:
        return (
            PLM_CTRL_LUT_PER_UNIT
            + PLM_CTRL_LUT_PER_MEMBER * (len(self.members) - 1)
            + PLM_CTRL_LUT_PER_UNIT * (self.banks - 1)  # bank steering
        )

    @property
    def ctrl_ffs(self) -> int:
        return PLM_CTRL_FF_PER_UNIT * self.banks

    def __str__(self) -> str:
        bank_s = f", {self.banks} banks" if self.banks > 1 else ""
        return (
            f"PLM {self.name}: {{{', '.join(self.members)}}} "
            f"{self.words} words, {self.port_class.value}{bank_s}, {self.brams} BRAM36"
        )


@dataclass
class MemorySubsystem:
    """All PLM units of one kernel replica."""

    units: List[PLMUnit] = field(default_factory=list)

    @property
    def brams(self) -> int:
        return sum(u.brams for u in self.units)

    @property
    def ctrl_luts(self) -> int:
        return sum(u.ctrl_luts for u in self.units)

    @property
    def ctrl_ffs(self) -> int:
        return sum(u.ctrl_ffs for u in self.units)

    @property
    def n_units(self) -> int:
        return len(self.units)

    def unit_of(self, array: str) -> PLMUnit:
        for u in self.units:
            if array in u.members:
                return u
        raise MemoryArchitectureError(f"array {array!r} not in any PLM unit")

    def arrays(self) -> List[str]:
        return [a for u in self.units for a in u.members]

    def summary(self) -> str:
        lines = [f"memory subsystem: {self.n_units} PLM units, {self.brams} BRAM36"]
        lines += [f"  {u}" for u in self.units]
        return "\n".join(lines)

    def validate(self) -> "MemorySubsystem":
        seen: Dict[str, str] = {}
        for u in self.units:
            for m in u.members:
                if m in seen:
                    raise MemoryArchitectureError(
                        f"array {m!r} in two PLM units ({seen[m]}, {u.name})"
                    )
                seen[m] = u.name
        return self
