"""Mnemosyne input metadata (step iv of Fig. 4).

"We modified the CFDlang compiler to automatically create the Mnemosyne
input metadata during the compilation.  This is crucial since the compiler
can support sophisticated partitioning or sharing of data among multiple
memory banks through code analysis."

The configuration carries, per exported array: size, word width, port
class, and the compatibility edges from liveness analysis.  It is
JSON-serializable (the artifact the flow hands to the memory generator).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.errors import MemoryArchitectureError
from repro.memory.compat import CompatibilityGraph
from repro.mnemosyne.bram import PortClass
from repro.poly.schedule import PolyProgram
from repro.teil.types import TensorKind


@dataclass
class MnemosyneConfig:
    """Everything Mnemosyne needs to build the memory subsystem."""

    arrays: List[str]
    sizes: Dict[str, int]                      # 64-bit words
    word_bits: int
    port_classes: Dict[str, PortClass]
    address_space_edges: Set[FrozenSet[str]] = field(default_factory=set)
    interface_edges: Set[FrozenSet[str]] = field(default_factory=set)
    banks: Dict[str, int] = field(default_factory=dict)  # cyclic partition factors

    def __post_init__(self) -> None:
        for a in self.arrays:
            if a not in self.sizes:
                raise MemoryArchitectureError(f"array {a!r} has no size")
            if a not in self.port_classes:
                raise MemoryArchitectureError(f"array {a!r} has no port class")

    def banks_of(self, array: str) -> int:
        return self.banks.get(array, 1)

    def compatible(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self.address_space_edges

    # -- serialization ------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "arrays": self.arrays,
                "sizes": self.sizes,
                "word_bits": self.word_bits,
                "port_classes": {a: p.value for a, p in self.port_classes.items()},
                "address_space_edges": sorted(sorted(e) for e in self.address_space_edges),
                "interface_edges": sorted(sorted(e) for e in self.interface_edges),
                "banks": self.banks,
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "MnemosyneConfig":
        d = json.loads(text)
        return MnemosyneConfig(
            arrays=list(d["arrays"]),
            sizes={k: int(v) for k, v in d["sizes"].items()},
            word_bits=int(d["word_bits"]),
            port_classes={k: PortClass(v) for k, v in d["port_classes"].items()},
            address_space_edges={frozenset(e) for e in d["address_space_edges"]},
            interface_edges={frozenset(e) for e in d["interface_edges"]},
            banks={k: int(v) for k, v in d.get("banks", {}).items()},
        )


def port_class_assignment(prog: PolyProgram) -> Dict[str, PortClass]:
    """Assign port classes per the streaming policy (see bram.py).

    Inputs/outputs whose data changes per element are streamed through the
    interconnect and need the extra system port; *static operands* — inputs
    read by two or more statements, i.e. reused operator matrices like S —
    are transferred once and need only the accelerator's ports, as do all
    temporaries.

    A fused chain breaks the reader-count heuristic: a per-element state
    tensor read once by each of three fused member kernels looks like a
    thrice-read static operand in the composite.  :func:`repro.teil.fuse.
    fuse_functions` therefore stamps ``system_port_hints`` on the fused
    function — the inputs that were per-element in at least one member —
    and when present that set, not the reader count, decides which
    inputs stream.
    """
    hints = getattr(prog.function, "system_port_hints", None)
    out: Dict[str, PortClass] = {}
    for d in prog.function.decls.values():
        if d.kind is TensorKind.OUTPUT:
            out[d.name] = PortClass.ACCELERATOR_AND_SYSTEM
        elif d.kind is TensorKind.INPUT:
            if hints is not None:
                static_operand = d.name not in hints
            else:
                n_readers = len(prog.readers_of(d.name))
                static_operand = n_readers >= 2
            out[d.name] = (
                PortClass.ACCELERATOR_ONLY
                if static_operand
                else PortClass.ACCELERATOR_AND_SYSTEM
            )
        else:
            out[d.name] = PortClass.ACCELERATOR_ONLY
    return out


def config_from_compat(
    graph: CompatibilityGraph,
    port_classes: Dict[str, PortClass],
    word_bits: int = 64,
    banks: Dict[str, int] | None = None,
) -> MnemosyneConfig:
    return MnemosyneConfig(
        arrays=list(graph.arrays),
        sizes=dict(graph.sizes),
        word_bits=word_bits,
        port_classes=dict(port_classes),
        address_space_edges=set(graph.address_space_edges),
        interface_edges=set(graph.interface_edges),
        banks=dict(banks or {}),
    )


def build_config(prog: PolyProgram) -> MnemosyneConfig:
    """Compiler-side convenience: compat graph + port classes in one call."""
    from repro.memory.compat import build_compatibility_graph

    return config_from_compat(build_compatibility_graph(prog), port_class_assignment(prog))
