"""HBM channel modeling and tensor -> pseudo-channel bank assignment.

The sequel papers extend the mnemosyne PLM flow from a flat BRAM budget
to multi-channel HBM on data-center cards: Soldavini & Pilato 2021
("Compiler Infrastructure for Specializing Domain-Specific Memory
Templates") define the template machinery, and Soldavini et al. 2022
("Automatic Creation of High-Bandwidth Memory Architectures from
Domain-Specific Languages") assign each logical buffer to one or more of
the Alveo U280's 32 HBM2 pseudo-channels so every AXI port streams from
its own bank conflict-free.

This module is that assignment as an analytic model.  Each transfer-
footprint tensor becomes a :class:`TensorDemand` (sustained bandwidth +
resident bytes); :func:`assign_banks` maps every demand onto *exclusive*
pseudo-channels — one channel never serves two tensors, matching the
one-AXI-port-per-channel hardware — by first-fit decreasing over the
demands, striping a tensor across several channels when one channel's
bandwidth or capacity cannot carry it.  An infeasible demand set raises
:class:`HbmSpillError` naming the offending tensor, so flow errors say
*what* to shrink, not just that the board is full.

Demoted intermediates never reach this module: fusion removes
``ACCELERATOR_ONLY`` arrays from the transfer footprint (they live in
on-device PLMs), so only tensors that actually cross the HBM boundary
consume channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import MemoryArchitectureError
from repro.utils import ascii_table, ceil_div


class HbmSpillError(MemoryArchitectureError):
    """A tensor's demand does not fit the remaining pseudo-channels."""


#: directions a transfer-footprint tensor moves across the HBM boundary
DIRECTION_IN = "in"          # host -> PLM, once per element
DIRECTION_OUT = "out"        # PLM -> host, once per element
DIRECTION_STATIC = "static"  # one-time operand transfer (e.g. S)


@dataclass(frozen=True)
class TensorDemand:
    """One transfer-footprint tensor's claim on the memory system.

    ``bytes_per_sec`` is the sustained streaming bandwidth the system's
    element rate implies (0 for static operands: a one-time transfer has
    no steady-state demand); ``resident_bytes`` is the footprint the
    tensor's whole dataset occupies in HBM (all Ne elements for streamed
    tensors, the operand itself for static ones).
    """

    name: str
    direction: str
    bytes_per_element: int
    bytes_per_sec: float
    resident_bytes: int

    def __post_init__(self) -> None:
        if self.direction not in (DIRECTION_IN, DIRECTION_OUT, DIRECTION_STATIC):
            raise MemoryArchitectureError(
                f"tensor {self.name!r}: unknown transfer direction "
                f"{self.direction!r}"
            )

    @property
    def streamed(self) -> bool:
        return self.direction in (DIRECTION_IN, DIRECTION_OUT)


@dataclass(frozen=True)
class ChannelAssignment:
    """One tensor mapped onto its (exclusive) pseudo-channels."""

    tensor: str
    direction: str
    channels: Tuple[int, ...]
    bytes_per_element: int
    bytes_per_sec: float
    resident_bytes: int

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    @property
    def streamed(self) -> bool:
        return self.direction in (DIRECTION_IN, DIRECTION_OUT)

    def utilization(self, channel_bytes_per_sec: float) -> float:
        """Bandwidth utilization of each assigned channel (demand is
        striped evenly, so all of a tensor's channels load equally)."""
        if not self.channels or channel_bytes_per_sec <= 0:
            return 0.0
        return self.bytes_per_sec / self.n_channels / channel_bytes_per_sec


@dataclass
class BankingReport:
    """The ``bank-assign`` stage's product: who streams from where.

    ``assignments`` hold one entry per transfer-footprint tensor;
    channels are exclusive (validated), so per-channel utilization is the
    owning tensor's striped share.  The report is what the simulate
    stage consults for HBM transfer timing and what
    :class:`~repro.flow.pipeline.FlowResult` surfaces to users.
    """

    board: str
    n_channels: int
    channel_bytes_per_sec: float
    channel_bytes: int
    assignments: Tuple[ChannelAssignment, ...] = ()
    #: modeled element rate the accelerators demand (what bandwidth was
    #: provisioned against), elements/sec
    demanded_elements_per_sec: float = 0.0

    def __post_init__(self) -> None:
        owners: Dict[int, str] = {}
        for a in self.assignments:
            for ch in a.channels:
                if ch in owners:
                    raise MemoryArchitectureError(
                        f"channel {ch} assigned to both {owners[ch]!r} "
                        f"and {a.tensor!r}"
                    )
                if not 0 <= ch < self.n_channels:
                    raise MemoryArchitectureError(
                        f"tensor {a.tensor!r} assigned out-of-range "
                        f"channel {ch} (board has {self.n_channels})"
                    )
                owners[ch] = a.tensor

    # -- aggregate views -----------------------------------------------------
    @property
    def channels_used(self) -> int:
        return sum(a.n_channels for a in self.assignments)

    def assignment_of(self, tensor: str) -> ChannelAssignment:
        for a in self.assignments:
            if a.tensor == tensor:
                return a
        raise MemoryArchitectureError(
            f"tensor {tensor!r} has no channel assignment (assigned: "
            f"{', '.join(a.tensor for a in self.assignments) or 'none'})"
        )

    def channel_utilization(self) -> Dict[int, float]:
        """Per-channel bandwidth utilization (only channels in use)."""
        out: Dict[int, float] = {}
        for a in self.assignments:
            util = a.utilization(self.channel_bytes_per_sec)
            for ch in a.channels:
                out[ch] = util
        return out

    def achievable_elements_per_sec(self) -> float:
        """Streaming rate the assigned channels sustain: the slowest
        streamed tensor's (aggregate channel bandwidth / bytes per
        element) bounds the pipeline."""
        rates = [
            a.n_channels * self.channel_bytes_per_sec / a.bytes_per_element
            for a in self.assignments
            if a.streamed and a.bytes_per_element > 0
        ]
        return min(rates) if rates else float("inf")

    def phase_seconds(self, direction: str, n_elements: int) -> float:
        """Wall-clock of one transfer phase moving ``n_elements``.

        Channels drain/fill concurrently (each has its own AXI port), so
        a phase lasts as long as its slowest tensor.  For
        ``DIRECTION_STATIC`` the resident bytes move once and
        ``n_elements`` is ignored.
        """
        seconds = 0.0
        for a in self.assignments:
            if a.direction != direction:
                continue
            bw = a.n_channels * self.channel_bytes_per_sec
            if bw <= 0:
                continue
            n_bytes = (
                a.resident_bytes
                if direction == DIRECTION_STATIC
                else n_elements * a.bytes_per_element
            )
            seconds = max(seconds, n_bytes / bw)
        return seconds

    def phase_cycles(self, direction: str, n_elements: int, clock_hz: float) -> int:
        """The same phase in integer fabric cycles at ``clock_hz``."""
        seconds = self.phase_seconds(direction, n_elements)
        if seconds <= 0.0:
            return 0
        return max(1, math.ceil(seconds * clock_hz))

    def summary(self) -> str:
        rows = []
        for a in self.assignments:
            util = a.utilization(self.channel_bytes_per_sec)
            rows.append(
                (
                    a.tensor,
                    a.direction,
                    a.n_channels,
                    ",".join(str(c) for c in a.channels),
                    f"{a.bytes_per_sec / 1e9:.3f}",
                    f"{util * 100:.1f}%",
                )
            )
        head = (
            f"HBM banking on {self.board}: {self.channels_used}/"
            f"{self.n_channels} channels, "
            f"{self.achievable_elements_per_sec():,.0f} elements/s achievable "
            f"({self.demanded_elements_per_sec:,.0f} demanded)"
        )
        return head + "\n" + ascii_table(
            ["tensor", "dir", "ch", "channels", "GB/s", "util/ch"], rows
        )


def channels_needed(demand: TensorDemand, channel_bytes_per_sec: float,
                    channel_bytes: int) -> int:
    """Channels one tensor needs so no channel exceeds its bandwidth or
    capacity (the striping width)."""
    n = 1
    if demand.bytes_per_sec > 0 and channel_bytes_per_sec > 0:
        n = max(n, math.ceil(demand.bytes_per_sec / channel_bytes_per_sec))
    if demand.resident_bytes > 0 and channel_bytes > 0:
        n = max(n, ceil_div(demand.resident_bytes, channel_bytes))
    return n


def assign_banks(
    demands: Sequence[TensorDemand],
    *,
    board: str,
    n_channels: int,
    channel_bytes_per_sec: float,
    channel_bytes: int,
    demanded_elements_per_sec: float = 0.0,
) -> BankingReport:
    """Map every demand onto exclusive pseudo-channels (greedy FFD).

    Demands are sorted by bandwidth, then residency, decreasing — the
    classic first-fit-decreasing order, which here degenerates to an
    optimal packing because channels are exclusive: each tensor takes
    exactly ``channels_needed`` whole channels, so only the *sum* of
    widths can spill.  The FFD order still matters for the diagnostic:
    the big demands grab channels first, and the spill names the tensor
    whose marginal demand broke the budget together with what it needed
    and what was left.
    """
    seen: Dict[str, str] = {}
    for d in demands:
        if d.name in seen:
            raise MemoryArchitectureError(
                f"tensor {d.name!r} appears twice in the demand set"
            )
        seen[d.name] = d.direction
    ordered = sorted(
        demands, key=lambda d: (-d.bytes_per_sec, -d.resident_bytes, d.name)
    )
    assignments: List[ChannelAssignment] = []
    next_free = 0
    for demand in ordered:
        width = channels_needed(demand, channel_bytes_per_sec, channel_bytes)
        if next_free + width > n_channels:
            need_gbps = demand.bytes_per_sec / 1e9
            raise HbmSpillError(
                f"tensor {demand.name!r} spills the HBM banks on {board}: "
                f"it needs {width} pseudo-channel(s) "
                f"({need_gbps:.2f} GB/s sustained, "
                f"{demand.resident_bytes:,} bytes resident) but only "
                f"{n_channels - next_free} of {n_channels} remain; reduce "
                f"k (lower the element rate), shrink the element count, or "
                f"demote the tensor from the transfer footprint (fusion)"
            )
        assignments.append(
            ChannelAssignment(
                tensor=demand.name,
                direction=demand.direction,
                channels=tuple(range(next_free, next_free + width)),
                bytes_per_element=demand.bytes_per_element,
                bytes_per_sec=demand.bytes_per_sec,
                resident_bytes=demand.resident_bytes,
            )
        )
        next_free += width
    return BankingReport(
        board=board,
        n_channels=n_channels,
        channel_bytes_per_sec=channel_bytes_per_sec,
        channel_bytes=channel_bytes,
        assignments=tuple(assignments),
        demanded_elements_per_sec=demanded_elements_per_sec,
    )


def demands_from_footprint(
    footprint,
    decls,
    *,
    elements_per_sec: float,
    n_elements: int,
) -> List[TensorDemand]:
    """Build the demand set for one kernel's transfer footprint.

    ``footprint`` is a :class:`~repro.system.integration.
    TransferFootprint`; ``decls`` the TeIL declarations supplying
    per-tensor sizes and kinds.  Streamed tensors demand ``element rate x
    bytes/element`` sustained and hold all ``n_elements`` in HBM; static
    operands demand no steady-state bandwidth (moved once) and hold one
    copy.  Arrays fusion demoted to ``ACCELERATOR_ONLY`` are absent from
    the footprint, so they produce no demand — on-device intermediates
    never consume channels.
    """
    from repro.teil.types import TensorKind

    out: List[TensorDemand] = []
    for name in footprint.streamed:
        decl = decls[name]
        direction = (
            DIRECTION_IN if decl.kind is TensorKind.INPUT else DIRECTION_OUT
        )
        out.append(
            TensorDemand(
                name=name,
                direction=direction,
                bytes_per_element=decl.n_bytes,
                bytes_per_sec=elements_per_sec * decl.n_bytes,
                resident_bytes=n_elements * decl.n_bytes,
            )
        )
    for name in footprint.static:
        decl = decls[name]
        out.append(
            TensorDemand(
                name=name,
                direction=DIRECTION_STATIC,
                bytes_per_element=decl.n_bytes,
                bytes_per_sec=0.0,
                resident_bytes=decl.n_bytes,
            )
        )
    return out
