"""Small shared utilities: deterministic helpers, formatting, timing."""

from repro.utils.textgrid import ascii_table, ascii_barchart, format_si
from repro.utils.misc import (
    prod,
    is_power_of_two,
    ceil_div,
    pairwise_disjoint,
    stable_topo_orders,
)

__all__ = [
    "ascii_table",
    "ascii_barchart",
    "format_si",
    "prod",
    "is_power_of_two",
    "ceil_div",
    "pairwise_disjoint",
    "stable_topo_orders",
]
