"""Plain-text rendering of tables and bar charts for benchmark output.

The benchmark harness regenerates the paper's tables and figures as text so
the run log is self-contained (no plotting dependencies).
"""

from __future__ import annotations

from typing import Sequence


def format_si(value: float, unit: str = "") -> str:
    """Format a value with an SI prefix (e.g. 12_580 -> '12.58 k')."""
    prefixes = [(1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, "")]
    for scale, prefix in prefixes:
        if abs(value) >= scale:
            return f"{value / scale:.2f} {prefix}{unit}".rstrip()
    return f"{value:.3g} {unit}".rstrip()


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a header separator row."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    ncol = max(len(r) for r in cells)
    for r in cells:
        r.extend([""] * (ncol - len(r)))
    widths = [max(len(r[i]) for r in cells) for i in range(ncol)]

    def fmt_row(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(cells[0]))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in cells[1:])
    return "\n".join(lines)


def ascii_barchart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a horizontal bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vmax = max((abs(v) for v in values), default=1.0) or 1.0
    lw = max((len(s) for s in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = int(round(width * abs(value) / vmax))
        lines.append(f"{label.rjust(lw)} | {'#' * n} {value:.2f}{unit}")
    return "\n".join(lines)
