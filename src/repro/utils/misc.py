"""Miscellaneous numeric and combinatorial helpers."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence


def prod(values: Iterable[int]) -> int:
    """Integer product of an iterable (1 for empty input)."""
    out = 1
    for v in values:
        out *= int(v)
    return out


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    return -(-a // b)


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def pairwise_disjoint(sets: Sequence[frozenset]) -> bool:
    """True iff every pair of the given sets is disjoint."""
    seen: set = set()
    for s in sets:
        if seen & s:
            return False
        seen |= s
    return True


def stable_topo_orders(
    nodes: Sequence[Hashable],
    edges: Mapping[Hashable, Iterable[Hashable]],
    limit: int = 5000,
) -> Iterator[tuple]:
    """Enumerate topological orders of a DAG deterministically.

    ``edges[u]`` lists successors of ``u`` (u must come before them).  Orders
    are produced in lexicographic order of the input ``nodes`` sequence, and
    enumeration stops after ``limit`` orders to bound work on dense DAGs.
    """
    succ = {n: set(edges.get(n, ())) for n in nodes}
    indeg = {n: 0 for n in nodes}
    for u in nodes:
        for v in succ[u]:
            if v not in indeg:
                raise ValueError(f"edge target {v!r} not in node set")
            indeg[v] += 1

    count = 0

    def rec(order: list, indeg_now: dict) -> Iterator[tuple]:
        nonlocal count
        if count >= limit:
            return
        if len(order) == len(nodes):
            count += 1
            yield tuple(order)
            return
        for n in nodes:
            if n not in order and indeg_now[n] == 0:
                nxt = dict(indeg_now)
                nxt[n] = -1  # consumed
                for v in succ[n]:
                    nxt[v] -= 1
                order.append(n)
                yield from rec(order, nxt)
                order.pop()
                if count >= limit:
                    return

    return rec([], indeg)
